"""Statistical estimates and the algebra used to compose them.

An :class:`Estimate` carries the expected value and the variance of an
estimator of a probability (paper Section 3.2).  The composition rules of the
paper become methods here:

* :meth:`Estimate.add_disjoint` — Equations (4)–(6), Theorem 1: the estimator
  of a disjunction of disjoint events; variances add as an upper bound.
* :meth:`Estimate.multiply_independent` — Equations (7)–(8): the estimator of
  a conjunction of independent events.
* :meth:`Estimate.scale` — the weighting step of stratified sampling,
  Equation (3).

:class:`RunningEstimate` is the incremental counterpart of
:meth:`Estimate.from_hits`: a Welford/Chan accumulator that can absorb further
sample batches and merge with accumulators built elsewhere, so any estimate in
the stack can be resumed instead of recomputed from zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple


@dataclass(frozen=True)
class Estimate:
    """Expected value and variance of a probability estimator."""

    mean: float
    variance: float

    def __post_init__(self) -> None:
        if math.isnan(self.mean) or math.isnan(self.variance):
            raise ValueError("estimate mean/variance may not be NaN")
        if self.variance < 0.0:
            # Tiny negative values can appear from floating-point cancellation
            # in the product rule; clamp them rather than reject them.
            object.__setattr__(self, "variance", 0.0)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zero() -> "Estimate":
        """The estimate of an impossible event (mean 0, variance 0)."""
        return Estimate(0.0, 0.0)

    @staticmethod
    def one() -> "Estimate":
        """The estimate of a certain event (mean 1, variance 0)."""
        return Estimate(1.0, 0.0)

    @staticmethod
    def exact(probability: float) -> "Estimate":
        """An exact probability (zero variance)."""
        return Estimate(probability, 0.0)

    @staticmethod
    def from_hits(hits: int, samples: int) -> "Estimate":
        """Hit-or-miss estimate from raw counts (paper Equation 2).

        ``samples`` must be positive; the variance is the binomial-proportion
        variance ``p (1 - p) / n``.
        """
        if samples <= 0:
            raise ValueError("sample count must be positive")
        if hits < 0 or hits > samples:
            raise ValueError(f"hit count {hits} outside [0, {samples}]")
        mean = hits / samples
        variance = mean * (1.0 - mean) / samples
        return Estimate(mean, variance)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def std(self) -> float:
        """Standard deviation (square root of the variance)."""
        return math.sqrt(self.variance)

    def chebyshev_interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Interval containing the true value with at least ``confidence``.

        Uses Chebyshev's inequality, as suggested in the paper's Section 6.2
        discussion, so no distributional assumption is needed.  The interval is
        clipped to [0, 1] because the estimated quantity is a probability.
        """
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be strictly between 0 and 1")
        if self.variance == 0.0:
            return (self.mean, self.mean)
        k = 1.0 / math.sqrt(1.0 - confidence)
        radius = k * self.std
        return (max(0.0, self.mean - radius), min(1.0, self.mean + radius))

    def clamped(self) -> "Estimate":
        """Estimate with the mean clipped into [0, 1] (variance unchanged)."""
        return Estimate(min(1.0, max(0.0, self.mean)), self.variance)

    # ------------------------------------------------------------------ #
    # Composition rules
    # ------------------------------------------------------------------ #
    def scale(self, weight: float) -> "Estimate":
        """Estimate of ``weight * X`` — the per-stratum term of Equation (3)."""
        if weight < 0.0:
            raise ValueError("stratum weight must be non-negative")
        return Estimate(weight * self.mean, weight * weight * self.variance)

    def add_disjoint(self, other: "Estimate") -> "Estimate":
        """Estimator of the union of two disjoint events (Equations 4–6).

        The mean adds exactly; the variance adds as an upper bound justified by
        Theorem 1 (the covariance of indicators of disjoint events is
        non-positive).
        """
        return Estimate(self.mean + other.mean, self.variance + other.variance)

    def multiply_independent(self, other: "Estimate") -> "Estimate":
        """Estimator of the intersection of two independent events (Eq. 7–8)."""
        mean = self.mean * other.mean
        variance = (
            self.mean * self.mean * other.variance
            + other.mean * other.mean * self.variance
            + self.variance * other.variance
        )
        return Estimate(mean, variance)

    def __repr__(self) -> str:
        return f"Estimate(mean={self.mean:.6g}, variance={self.variance:.6g})"


@dataclass
class RunningEstimate:
    """Mergeable accumulator of a hit-or-miss estimator (Welford/Chan form).

    The accumulator tracks the sample count, the running mean, and the running
    sum of squared deviations ``m2``.  Bernoulli batches enter through
    :meth:`absorb_counts` (a batch of ``n`` indicator samples with ``h`` hits
    has mean ``h/n`` and ``m2 = n p (1 - p)``), and two accumulators combine
    with Chan's parallel update, so partial results computed in different
    rounds — or on different workers — merge exactly.
    """

    samples: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def __post_init__(self) -> None:
        if self.samples < 0:
            raise ValueError("sample count may not be negative")
        if self.m2 < 0.0:
            self.m2 = 0.0

    @staticmethod
    def from_counts(hits: int, samples: int) -> "RunningEstimate":
        """Accumulator equivalent to one Bernoulli batch of raw counts."""
        accumulator = RunningEstimate()
        accumulator.absorb_counts(hits, samples)
        return accumulator

    # ------------------------------------------------------------------ #
    # Accumulation
    # ------------------------------------------------------------------ #
    def absorb_counts(self, hits: int, samples: int) -> None:
        """Absorb a batch of ``samples`` indicator draws with ``hits`` hits."""
        if samples < 0:
            raise ValueError("batch sample count may not be negative")
        if samples == 0:
            return
        if hits < 0 or hits > samples:
            raise ValueError(f"hit count {hits} outside [0, {samples}]")
        batch_mean = hits / samples
        self.absorb_moments(samples, batch_mean, samples * batch_mean * (1.0 - batch_mean))

    def absorb_moments(self, samples: int, mean: float, m2: float) -> None:
        """Chan's parallel merge of another accumulator's raw moments."""
        if samples <= 0:
            return
        combined = self.samples + samples
        delta = mean - self.mean
        self.m2 = self.m2 + m2 + delta * delta * self.samples * samples / combined
        self.mean = self.mean + delta * samples / combined
        self.samples = combined

    def merge(self, other: "RunningEstimate") -> None:
        """Absorb ``other`` into this accumulator (``other`` is unchanged)."""
        self.absorb_moments(other.samples, other.mean, other.m2)

    def merged(self, other: "RunningEstimate") -> "RunningEstimate":
        """New accumulator combining this one and ``other``."""
        result = RunningEstimate(self.samples, self.mean, self.m2)
        result.merge(other)
        return result

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def hits(self) -> float:
        """Equivalent hit count (exact for purely Bernoulli input)."""
        return self.mean * self.samples

    @property
    def per_sample_variance(self) -> float:
        """Population variance of one draw (``p (1 - p)`` for Bernoulli data)."""
        if self.samples == 0:
            return 0.0
        return self.m2 / self.samples

    @property
    def per_sample_std(self) -> float:
        """Population standard deviation of one draw — the σ of Neyman allocation."""
        return math.sqrt(self.per_sample_variance)

    def variance_of_mean(self) -> float:
        """Variance of the sample mean (``p (1 - p) / n`` for Bernoulli data)."""
        if self.samples == 0:
            return 0.0
        return self.per_sample_variance / self.samples

    def to_estimate(self) -> Estimate:
        """Snapshot as an immutable :class:`Estimate`.

        Matches :meth:`Estimate.from_hits` exactly when the accumulator has
        only absorbed Bernoulli batches.  An empty accumulator has no data at
        all; it reports the maximally uncertain prior (mean ½, the Bernoulli
        variance ceiling ¼) rather than a spurious exact zero.
        """
        if self.samples == 0:
            return Estimate(0.5, 0.25)
        return Estimate(self.mean, self.variance_of_mean())

    def __repr__(self) -> str:
        return f"RunningEstimate(samples={self.samples}, mean={self.mean:.6g}, m2={self.m2:.6g})"


def sum_disjoint(estimates: Iterable[Estimate]) -> Estimate:
    """Fold :meth:`Estimate.add_disjoint` over ``estimates`` (paper Algorithm 1)."""
    total = Estimate.zero()
    for estimate in estimates:
        total = total.add_disjoint(estimate)
    return total


def product_independent(estimates: Iterable[Estimate]) -> Estimate:
    """Fold :meth:`Estimate.multiply_independent` over ``estimates``.

    The printed Algorithm 2 updates the running mean *before* using it in the
    variance update; that disagrees with Equation (8), so this implementation
    follows the equation (the mean used in the variance update is the one prior
    to multiplication), which is the statistically correct product rule.
    """
    iterator = iter(estimates)
    try:
        total = next(iterator)
    except StopIteration:
        return Estimate.one()
    for estimate in iterator:
        total = total.multiply_independent(estimate)
    return total
