"""Estimation-method registry: pluggable sampler construction per method name.

The analyzer used to hardcode its two estimation methods — the paper's
hit-or-miss sampling and the distribution-aware importance-sampling layer —
as an if/elif over :data:`ESTIMATION_METHODS`.  This module turns the method
name into a registry lookup so new estimation methods can be registered
(:func:`repro.api.register_method`) without touching
:mod:`repro.core.qcoral`.

An :class:`EstimationMethod` bundles everything the analyzer needs to know
about one method:

* ``make_sampler`` — how to build the resumable per-factor sampler;
* ``store_method`` — the persistent-store method tag, which keys counts apart
  so methods with different sampling semantics never pool their Bernoulli
  counts (see :mod:`repro.store.keys`);
* ``requires_stratified`` / ``adaptive`` — the configuration constraints the
  method imposes (importance sampling refines ICP pavings, so it needs the
  STRAT feature, and mass-aware allocation needs the adaptive round loop);
* ``feature`` — the optional tag the method contributes to
  :meth:`QCoralConfig.feature_label` (``IMP`` for importance sampling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from repro.core.importance import ImportanceSampler
from repro.core.profiles import UsageProfile
from repro.core.stratified import StratifiedSampler
from repro.exec.seeds import SeedStream
from repro.icp.solver import ICPSolver
from repro.lang import ast
from repro.registry import Registry
from repro.store.keys import importance_method, stratified_method

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.qcoral import QCoralConfig
    from repro.obs import Observability

#: Signature every registered sampler factory must satisfy; ``config`` is the
#: run's :class:`~repro.core.qcoral.QCoralConfig`, from which method-specific
#: knobs (e.g. ``mass_split_boxes``) are read.
SamplerFactory = Callable[..., StratifiedSampler]


@dataclass(frozen=True)
class EstimationMethod:
    """One pluggable estimation method of the stratified sampling layer."""

    name: str
    make_sampler: SamplerFactory
    store_method: Callable[["QCoralConfig"], str]
    requires_stratified: bool = False
    adaptive: bool = False
    feature: Optional[str] = None


#: Registry of estimation methods: name → :class:`EstimationMethod`.
METHOD_REGISTRY: "Registry[EstimationMethod]" = Registry("estimation method")

#: Method names accepted throughout the stack (config, CLI).  A live view of
#: :data:`METHOD_REGISTRY` — registered methods appear here too.
ESTIMATION_METHODS = METHOD_REGISTRY.view()


def _make_hit_or_miss(
    factor: ast.PathCondition,
    profile: UsageProfile,
    rng: Optional[np.random.Generator],
    *,
    variables: Sequence[str],
    solver: ICPSolver,
    seed_stream: Optional[SeedStream],
    chunk_size: Optional[int],
    config: "QCoralConfig",
    observability: Optional["Observability"] = None,
) -> StratifiedSampler:
    return StratifiedSampler(
        factor,
        profile,
        rng,
        variables=variables,
        solver=solver,
        seed_stream=seed_stream,
        chunk_size=chunk_size,
        observability=observability,
    )


def _make_importance(
    factor: ast.PathCondition,
    profile: UsageProfile,
    rng: Optional[np.random.Generator],
    *,
    variables: Sequence[str],
    solver: ICPSolver,
    seed_stream: Optional[SeedStream],
    chunk_size: Optional[int],
    config: "QCoralConfig",
    observability: Optional["Observability"] = None,
) -> StratifiedSampler:
    return ImportanceSampler(
        factor,
        profile,
        rng,
        variables=variables,
        solver=solver,
        seed_stream=seed_stream,
        chunk_size=chunk_size,
        max_boxes=config.mass_split_boxes,
        adaptive_splits=config.mass_split_adaptive,
        observability=observability,
    )


METHOD_REGISTRY.register(
    "hit-or-miss",
    EstimationMethod(
        name="hit-or-miss",
        make_sampler=_make_hit_or_miss,
        store_method=lambda config: stratified_method(config.icp),
    ),
)
METHOD_REGISTRY.register(
    "importance",
    EstimationMethod(
        name="importance",
        make_sampler=_make_importance,
        store_method=lambda config: importance_method(config.icp, config.mass_split_boxes),
        requires_stratified=True,
        adaptive=True,
        feature="IMP",
    ),
)


def store_method_tag(config: "QCoralConfig") -> str:
    """The persistent-store method tag a configuration samples under.

    This is the single place the config → method-tag mapping lives: the
    analyzer keys its store context with it, the run ledger derives family
    digests from it, and the incremental differ must produce digests that
    line up with both — so all three call here.  Non-stratified runs always
    tag ``mc`` regardless of the configured method name (the STRAT feature
    off means whole-domain hit-or-miss counts).
    """
    from repro.store.keys import mc_method

    if not config.stratified:
        return mc_method()
    if config.method not in METHOD_REGISTRY:
        return config.method
    return METHOD_REGISTRY.get(config.method).store_method(config)
