"""Tokenizer shared by the constraint language and the mini imperative language.

The token set is deliberately small: numbers, identifiers, keywords supplied by
the caller, arithmetic and comparison operators, boolean connectives and
punctuation.  Both parsers (``repro.lang.parser`` and ``repro.symexec.parser``)
work on the token stream produced here, which keeps error reporting (line and
column numbers) consistent across the two front ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set

from repro.errors import ParseError

# Token kinds.
NUMBER = "NUMBER"
IDENT = "IDENT"
KEYWORD = "KEYWORD"
OPERATOR = "OPERATOR"
PUNCT = "PUNCT"
EOF = "EOF"

# Multi-character operators must be listed before their single-character
# prefixes so that maximal-munch tokenisation picks the longest match.
_OPERATORS = (
    "&&", "||", "<=", ">=", "==", "!=", "->",
    "+", "-", "*", "/", "<", ">", "=", "!",
)

_PUNCTUATION = ("(", ")", "{", "}", "[", "]", ",", ";", ":")


@dataclass(frozen=True)
class Token:
    """A single lexical token with source position information."""

    kind: str
    text: str
    line: int
    column: int

    def matches(self, kind: str, text: Optional[str] = None) -> bool:
        """True when the token has the given kind (and text, if provided)."""
        return self.kind == kind and (text is None or self.text == text)

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str, keywords: Optional[Set[str]] = None) -> List[Token]:
    """Tokenise ``source`` into a list ending with an EOF token.

    ``keywords`` upgrades matching identifiers to KEYWORD tokens; the constraint
    language passes none, the mini language passes its statement keywords.
    """
    keywords = keywords or set()
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    while index < length:
        char = source[index]

        # Whitespace and newlines.
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char.isspace():
            index += 1
            column += 1
            continue

        # Line comments: both '#' and '//' styles.
        if char == "#" or source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue

        # Numbers: integer or floating point with optional exponent.
        if char.isdigit() or (char == "." and index + 1 < length and source[index + 1].isdigit()):
            start = index
            start_column = column
            index, column = _scan_number(source, index, column, line)
            tokens.append(Token(NUMBER, source[start:index], line, start_column))
            continue

        # Identifiers and keywords (allow dots for names like Math.sin).
        if char.isalpha() or char == "_":
            start = index
            start_column = column
            while index < length and (source[index].isalnum() or source[index] in "_."):
                index += 1
                column += 1
            text = source[start:index]
            kind = KEYWORD if text in keywords else IDENT
            tokens.append(Token(kind, text, line, start_column))
            continue

        # Operators (longest match first).
        operator = _match_prefix(source, index, _OPERATORS)
        if operator is not None:
            tokens.append(Token(OPERATOR, operator, line, column))
            index += len(operator)
            column += len(operator)
            continue

        # Punctuation.
        if char in _PUNCTUATION:
            tokens.append(Token(PUNCT, char, line, column))
            index += 1
            column += 1
            continue

        raise ParseError(f"unexpected character {char!r}", line, column)

    tokens.append(Token(EOF, "", line, column))
    return tokens


def _scan_number(source: str, index: int, column: int, line: int) -> tuple:
    """Advance past a numeric literal, returning the new (index, column)."""
    length = len(source)
    start = index
    while index < length and source[index].isdigit():
        index += 1
    if index < length and source[index] == ".":
        index += 1
        while index < length and source[index].isdigit():
            index += 1
    if index < length and source[index] in "eE":
        next_index = index + 1
        if next_index < length and source[next_index] in "+-":
            next_index += 1
        if next_index < length and source[next_index].isdigit():
            index = next_index
            while index < length and source[index].isdigit():
                index += 1
    text = source[start:index]
    try:
        float(text)
    except ValueError:
        raise ParseError(f"malformed number literal {text!r}", line, column)
    return index, column + (index - start)


def _match_prefix(source: str, index: int, candidates: Sequence[str]) -> Optional[str]:
    """Longest candidate string that is a prefix of ``source[index:]``."""
    for candidate in candidates:
        if source.startswith(candidate, index):
            return candidate
    return None


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: Sequence[Token]) -> None:
        self._tokens = list(tokens)
        self._position = 0

    def peek(self, offset: int = 0) -> Token:
        """Token at the cursor plus ``offset`` (saturating at EOF)."""
        position = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[position]

    def advance(self) -> Token:
        """Return the current token and move the cursor forward."""
        token = self.peek()
        if token.kind != EOF:
            self._position += 1
        return token

    def at_end(self) -> bool:
        """True when the cursor is at the EOF token."""
        return self.peek().kind == EOF

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        """True when the current token matches without consuming it."""
        return self.peek().matches(kind, text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        """Consume and return the current token if it matches, else None."""
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        """Consume a token of the given kind/text or raise :class:`ParseError`."""
        token = self.peek()
        if not token.matches(kind, text):
            expected = text if text is not None else kind
            raise ParseError(f"expected {expected!r} but found {token.text!r}", token.line, token.column)
        return self.advance()

    def __iter__(self) -> Iterator[Token]:
        return iter(self._tokens[self._position:])
