"""Substitution of expressions for variables.

The symbolic executor keeps an environment mapping program variables to
symbolic expressions over the *input* variables; every branch condition it
encounters is rewritten with this substitution so that the resulting path
condition only mentions inputs — exactly the form qCORAL consumes.
"""

from __future__ import annotations

from typing import Mapping

from repro.lang import ast


def substitute(expression: ast.Expression, bindings: Mapping[str, ast.Expression]) -> ast.Expression:
    """Replace every variable in ``expression`` that has a binding.

    Variables without a binding are left untouched (they are already inputs).
    """
    if isinstance(expression, ast.Constant):
        return expression
    if isinstance(expression, ast.Variable):
        return bindings.get(expression.name, expression)
    if isinstance(expression, ast.UnaryOp):
        return ast.UnaryOp(expression.operator, substitute(expression.operand, bindings))
    if isinstance(expression, ast.BinaryOp):
        return ast.BinaryOp(
            expression.operator,
            substitute(expression.left, bindings),
            substitute(expression.right, bindings),
        )
    if isinstance(expression, ast.FunctionCall):
        return ast.FunctionCall(
            expression.name,
            tuple(substitute(argument, bindings) for argument in expression.arguments),
        )
    raise TypeError(f"cannot substitute into node of type {type(expression).__name__}")


def substitute_constraint(constraint: ast.Constraint, bindings: Mapping[str, ast.Expression]) -> ast.Constraint:
    """Apply :func:`substitute` to both sides of a constraint."""
    return ast.Constraint(
        constraint.operator,
        substitute(constraint.left, bindings),
        substitute(constraint.right, bindings),
    )
