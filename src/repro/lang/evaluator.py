"""Concrete (floating-point) evaluation of expressions and constraints.

This evaluator defines the semantics against which everything else is checked:
the hit-or-miss Monte Carlo sampler uses it as its oracle (a sample is a "hit"
when :func:`holds_path_condition` returns True), and the interval evaluator and
ICP solver are validated against it by property tests.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Mapping, Sequence

from repro.errors import EvaluationError, UnknownFunctionError, UnknownVariableError
from repro.lang import ast

Assignment = Mapping[str, float]

_UNARY_FUNCTIONS: Dict[str, Callable[[float], float]] = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "asin": math.asin,
    "acos": math.acos,
    "atan": math.atan,
    "sinh": math.sinh,
    "cosh": math.cosh,
    "tanh": math.tanh,
    "exp": math.exp,
    "log": math.log,
    "log10": math.log10,
    "sqrt": math.sqrt,
    "abs": abs,
}

_BINARY_FUNCTIONS: Dict[str, Callable[[float, float], float]] = {
    "pow": math.pow,
    "atan2": math.atan2,
    "min": min,
    "max": max,
}

_COMPARATORS: Dict[str, Callable[[float, float], bool]] = {
    "<=": lambda a, b: a <= b,
    "<": lambda a, b: a < b,
    ">=": lambda a, b: a >= b,
    ">": lambda a, b: a > b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def evaluate(expression: ast.Expression, assignment: Assignment) -> float:
    """Evaluate ``expression`` under the variable ``assignment``.

    Domain errors of the underlying math functions (``sqrt`` of a negative
    number, ``log`` of zero, division by zero) are reported as NaN or signed
    infinity rather than exceptions, mirroring the behaviour of the Java
    floating-point programs the paper analyses: such points simply fail to
    satisfy the constraints that mention them.
    """
    if isinstance(expression, ast.Constant):
        return expression.value

    if isinstance(expression, ast.Variable):
        try:
            return float(assignment[expression.name])
        except KeyError as exc:
            raise UnknownVariableError(expression.name) from exc

    if isinstance(expression, ast.UnaryOp):
        value = evaluate(expression.operand, assignment)
        if expression.operator == "-":
            return -value
        raise EvaluationError(f"unknown unary operator {expression.operator!r}")

    if isinstance(expression, ast.BinaryOp):
        left = evaluate(expression.left, assignment)
        right = evaluate(expression.right, assignment)
        return _apply_binary_operator(expression.operator, left, right)

    if isinstance(expression, ast.FunctionCall):
        arguments = [evaluate(argument, assignment) for argument in expression.arguments]
        return _apply_function(expression.name, arguments)

    raise EvaluationError(f"cannot evaluate node of type {type(expression).__name__}")


def _apply_binary_operator(operator: str, left: float, right: float) -> float:
    if operator == "+":
        return left + right
    if operator == "-":
        return left - right
    if operator == "*":
        return left * right
    if operator == "/":
        if right == 0.0:
            if left == 0.0:
                return math.nan
            return math.copysign(math.inf, left) * math.copysign(1.0, right)
        return left / right
    raise EvaluationError(f"unknown binary operator {operator!r}")


def _apply_function(name: str, arguments: Sequence[float]) -> float:
    if name in _UNARY_FUNCTIONS:
        if len(arguments) != 1:
            raise EvaluationError(f"function {name!r} expects 1 argument, got {len(arguments)}")
        try:
            return _UNARY_FUNCTIONS[name](arguments[0])
        except (ValueError, OverflowError):
            return math.nan
    if name in _BINARY_FUNCTIONS:
        if len(arguments) != 2:
            raise EvaluationError(f"function {name!r} expects 2 arguments, got {len(arguments)}")
        try:
            return _BINARY_FUNCTIONS[name](arguments[0], arguments[1])
        except (ValueError, OverflowError):
            return math.nan
    raise UnknownFunctionError(name)


def holds(constraint: ast.Constraint, assignment: Assignment) -> bool:
    """True when ``assignment`` satisfies the atomic ``constraint``.

    Comparisons involving NaN are unsatisfied, matching IEEE semantics.
    """
    left = evaluate(constraint.left, assignment)
    right = evaluate(constraint.right, assignment)
    if math.isnan(left) or math.isnan(right):
        return constraint.operator == "!=" and not (math.isnan(left) and math.isnan(right))
    return _COMPARATORS[constraint.operator](left, right)


def holds_path_condition(pc: ast.PathCondition, assignment: Assignment) -> bool:
    """True when ``assignment`` satisfies every conjunct of ``pc``."""
    return all(holds(constraint, assignment) for constraint in pc.constraints)


def holds_any(constraint_set: ast.ConstraintSet, assignment: Assignment) -> bool:
    """Indicator function of the paper's Equation (1): any PC satisfied."""
    return any(holds_path_condition(pc, assignment) for pc in constraint_set.path_conditions)


def supported_function_names() -> Sequence[str]:
    """Names of all functions the concrete evaluator understands."""
    return sorted(set(_UNARY_FUNCTIONS) | set(_BINARY_FUNCTIONS))
