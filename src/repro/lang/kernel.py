"""Fused-kernel constraint compiler with a persistent cross-process cache.

:mod:`repro.lang.compiler` evaluates a path condition as a tree of NumPy
closures: every AST node is one Python call plus one intermediate ndarray per
batch, and every constant is materialised with ``np.full``.  The estimator
spends essentially all of its wall-clock in that tree, so this module lowers a
whole canonical path condition (or constraint set) into **one** generated
Python function — a fused kernel — that computes the conjunction in a single
pass with explicit temporaries:

* constants stay scalar literals (NumPy broadcasting replaces ``np.full``);
* each variable is converted to a float array once, not once per occurrence;
* common subexpressions are computed once across conjuncts — and, for
  constraint sets, across *path conditions*, which share long prefixes under
  bounded symbolic execution;
* the conjunction short-circuits between conjuncts exactly like the closure
  evaluator (``if not out.any(): return out``).

The compiled semantics is bit-identical to the closure compiler's: the same
ufuncs run in the same per-expression order, domain errors (division by zero,
roots/logs of negatives) produce the same NaN/inf entries under the same
``errstate``, and comparisons involving NaN are unsatisfied.  The closure
compiler stays as the reference oracle (`tier="closure"`).

Tiers
-----
``fused``
    The generated NumPy kernel, ``compile()``/``exec()``-ed.  The default.
``numba``
    The fused kernel wrapped in ``numba.njit``.  Requires numba; when it is
    not importable — or the jitted kernel fails a probe-batch equivalence
    check against the fused kernel — the fused tier is used instead and a
    ``RuntimeWarning`` is emitted once.
``closure``
    The pre-existing closure-tree compiler, kept as the reference oracle and
    kill-switch (kernels are still cached, just not fused).
``auto``
    ``numba`` when importable, else ``fused``.

The tier is selected per call (``get_kernel(..., tier=...)``), per process
(:func:`set_kernel_tier`), or per environment (``QCORAL_KERNEL_TIER``); the
``qcoral`` CLI exposes ``--kernel-tier``.

Caching
-------
Kernels are keyed by the **alpha-renamed canonical text** of the constraint
(:mod:`repro.lang.canonical`) plus :data:`KERNEL_VERSION`, so alpha-equivalent
factors — ``x <= 0.5`` and ``y <= 0.5`` — share one compiled kernel, and a
codegen change invalidates every stale entry.  Two tiers of cache:

* an in-process, thread-safe LRU (``QCORAL_KERNEL_CACHE_SIZE``, default 4096)
  holding compiled kernel functions;
* a persistent on-disk **source** cache under ``~/.cache/qcoral/kernels``
  (override with ``QCORAL_KERNEL_CACHE_DIR``; disable with
  ``QCORAL_KERNEL_DISK_CACHE=0``), so repeated runs and freshly forked
  ProcessPool workers skip codegen — the JIT-cache pattern Bodo uses for
  repeated pandas/numpy workloads.  Files are written atomically and
  validated (version + key digest + a sha256 of the function body) before
  reuse, so a corrupt, stale, or tampered file is regenerated, never trusted.
"""

from __future__ import annotations

import hashlib
import logging
import math
import os
import tempfile
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, EvaluationError, UnknownFunctionError, UnknownVariableError
from repro.lang import ast
from repro.lang.canonical import alpha_canonical_greedy, canonical_name
from repro.lang.compiler import (
    CompiledPredicate,
    SampleBatch,
    _batch_length,
    compile_constraint_set,
    compile_path_condition,
)
from repro.lang.substitution import substitute_constraint

#: Version tag of the kernel codegen.  Folded into every cache key (memory and
#: disk), so bumping it invalidates all previously emitted kernels; bump on any
#: change to the generated source or its semantics.
KERNEL_VERSION = "qcoral-kernel-3"

#: Selectable kernel tiers (see module docstring).
KERNEL_TIERS = ("auto", "fused", "numba", "closure")

#: Environment variable selecting the tier for a whole process tree (workers
#: inherit it), overridden by :func:`set_kernel_tier` and the ``tier=`` arg.
TIER_ENV = "QCORAL_KERNEL_TIER"

#: Environment variable overriding the persistent cache directory.
CACHE_DIR_ENV = "QCORAL_KERNEL_CACHE_DIR"

#: Environment variable disabling the persistent cache; case-insensitive
#: ``0``/``false``/``no``/``off`` disable, anything else (or unset) enables.
DISK_CACHE_ENV = "QCORAL_KERNEL_DISK_CACHE"

#: Environment variable bounding the in-process LRU (entries, default 4096).
CACHE_SIZE_ENV = "QCORAL_KERNEL_CACHE_SIZE"

#: Default in-process LRU capacity.
DEFAULT_CACHE_SIZE = 4096

#: Name of the generated function inside an emitted kernel source.
_KERNEL_FUNC = "qcoral_kernel"

_LOGGER = logging.getLogger("repro.lang.kernel")

#: Anything :func:`get_kernel` accepts.
Compilable = Union[ast.Constraint, ast.PathCondition, ast.ConstraintSet]

#: NumPy spelling of every supported function, mirroring the closure
#: compiler's ufunc tables (same ufuncs => bit-identical values).
_UNARY_NUMPY: Dict[str, str] = {
    "sin": "np.sin",
    "cos": "np.cos",
    "tan": "np.tan",
    "asin": "np.arcsin",
    "acos": "np.arccos",
    "atan": "np.arctan",
    "sinh": "np.sinh",
    "cosh": "np.cosh",
    "tanh": "np.tanh",
    "exp": "np.exp",
    "log": "np.log",
    "log10": "np.log10",
    "sqrt": "np.sqrt",
    "abs": "np.abs",
}

_BINARY_NUMPY: Dict[str, str] = {
    "pow": "np.power",
    "atan2": "np.arctan2",
    "min": "np.minimum",
    "max": "np.maximum",
}


# --------------------------------------------------------------------------- #
# Tier selection
# --------------------------------------------------------------------------- #
_TIER_LOCK = threading.Lock()
_TIER_OVERRIDE: Optional[str] = None
_NUMBA_WARNED = False


def set_kernel_tier(tier: Optional[str]) -> None:
    """Set the process-wide kernel tier (None resets to the environment)."""
    global _TIER_OVERRIDE
    if tier is not None and tier not in KERNEL_TIERS:
        raise ConfigurationError(f"unknown kernel tier {tier!r}; expected one of {KERNEL_TIERS}")
    with _TIER_LOCK:
        _TIER_OVERRIDE = tier


def current_kernel_tier() -> str:
    """The configured tier: the process override, else the environment, else ``fused``."""
    with _TIER_LOCK:
        if _TIER_OVERRIDE is not None:
            return _TIER_OVERRIDE
    configured = os.environ.get(TIER_ENV, "").strip()
    if not configured:
        return "fused"
    if configured not in KERNEL_TIERS:
        raise ConfigurationError(f"{TIER_ENV}={configured!r} is not one of {KERNEL_TIERS}")
    return configured


def _numba_njit() -> Optional[Callable]:
    """``numba.njit`` when importable, else None (checked once per process)."""
    try:
        from numba import njit  # type: ignore[import-not-found]
    except Exception:  # pragma: no cover - depends on the environment
        return None
    return njit


def _warn_numba_fallback(reason: str) -> None:
    global _NUMBA_WARNED
    with _TIER_LOCK:
        if _NUMBA_WARNED:
            return
        _NUMBA_WARNED = True
    message = f"numba kernel tier unavailable ({reason}); falling back to fused"
    # Both channels on purpose: the warning keeps the pre-logging behaviour
    # visible in bare scripts, the logger feeds the ``repro`` hierarchy that
    # ``--verbose`` and library embedders subscribe to.
    _LOGGER.warning(message)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def _resolve_tier(tier: Optional[str]) -> str:
    """Resolve the requested/configured tier to a concrete one."""
    requested = tier if tier is not None else current_kernel_tier()
    if requested not in KERNEL_TIERS:
        raise ConfigurationError(f"unknown kernel tier {requested!r}; expected one of {KERNEL_TIERS}")
    if requested == "auto":
        return "numba" if _numba_njit() is not None else "fused"
    return requested


# --------------------------------------------------------------------------- #
# Canonicalisation: cache keys and renamed ASTs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _Lowered:
    """One constraint lowered to its canonical kernel identity.

    Attributes:
        kind: ``"pc"`` (conjunction) or ``"cs"`` (disjunction of conjunctions).
        text: Alpha-renamed canonical text — the cache key.
        digest: SHA-256 over ``KERNEL_VERSION + kind + text`` — the disk key.
        variables: Original variable names in canonical order; position ``i``
            is the variable kernel argument ``v{i}`` binds to.
    """

    kind: str
    text: str
    digest: str
    variables: Tuple[str, ...]


def _digest(kind: str, text: str) -> str:
    material = "\x1f".join((KERNEL_VERSION, kind, text))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _renamed_sorted_constraints(
    constraints: Sequence[ast.Constraint], order: Sequence[str]
) -> List[ast.Constraint]:
    """``constraints`` with ``order[i]`` renamed to ``$v{i}``, conjuncts sorted.

    The sorted order matches the canonical text's conjunct order, so the
    emitted source is a pure function of the canonical text.
    """
    bindings: Dict[str, ast.Expression] = {
        name: ast.Variable(canonical_name(index)) for index, name in enumerate(order)
    }
    renamed = [substitute_constraint(constraint, bindings) for constraint in constraints]
    return sorted(renamed, key=lambda constraint: constraint.canonical())


def _lower_path_condition(pc: ast.PathCondition) -> Tuple[_Lowered, List[ast.Constraint]]:
    # Greedy (linear-time) canonicalisation: the exact variant enumerates up
    # to 7! renamings, which costs tens of milliseconds per factor — far more
    # than sampling the factor.  Greedy may miss a share between equivalent
    # factors with shape-tied conjuncts; that duplicates a kernel, nothing else.
    alpha = alpha_canonical_greedy(pc)
    renamed = _renamed_sorted_constraints(pc.constraints, alpha.variables)
    lowered = _Lowered("pc", alpha.text, _digest("pc", alpha.text), alpha.variables)
    return lowered, renamed


def _lower_constraint_set(cs: ast.ConstraintSet) -> Tuple[_Lowered, List[List[ast.Constraint]]]:
    """Lower a disjunction with one *shared* renaming across all disjuncts.

    Per-disjunct alpha renaming would break cross-disjunct variable identity,
    so the whole set is renamed by one deterministic order (sorted original
    names).  Renamed sets therefore may miss reuse a per-conjunction alpha
    key would find — a cache miss, never a wrong kernel.
    """
    names = tuple(sorted(cs.free_variables()))
    renamed_pcs = [_renamed_sorted_constraints(pc.constraints, names) for pc in cs.path_conditions]
    texts = [" && ".join(c.canonical() for c in constraints) or "true" for constraints in renamed_pcs]
    ordered = sorted(range(len(texts)), key=lambda index: texts[index])
    text = " || ".join(texts[index] for index in ordered) or "false"
    lowered = _Lowered("cs", text, _digest("cs", text), names)
    return lowered, [renamed_pcs[index] for index in ordered]


# --------------------------------------------------------------------------- #
# Code generation
# --------------------------------------------------------------------------- #
def _arg_name(canonical: str) -> str:
    """Kernel argument name of a canonical variable (``$v3`` -> ``v3``)."""
    return canonical.lstrip("$")


class _Emitter:
    """Emits statements for expression trees with common-subexpression reuse.

    Every non-leaf node becomes one explicit temporary (``t3 = t1 * t2``);
    constants and variables are referenced inline.  Temporaries are shared by
    canonical text, so a subexpression appearing in several conjuncts — or in
    several path conditions of one constraint set — is computed once.
    """

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._cse: Dict[str, str] = {}
        self._count = 0

    def _temp(self) -> str:
        name = f"t{self._count}"
        self._count += 1
        return name

    def expression(self, expr: ast.Expression) -> str:
        """A Python fragment referencing the value of ``expr``."""
        if isinstance(expr, ast.Constant):
            # np.float64, not a bare literal: constant-constant arithmetic must
            # follow IEEE semantics (1.0/0.0 -> inf), never raise ZeroDivisionError
            # the way scalar Python floats would.  Non-finite values have no
            # repr that evaluates (`inf`/`nan` are not names in the kernel
            # namespace), so they are spelled via np.inf/np.nan — reachable
            # from ordinary inputs: `x < 1e999` parses to Constant(inf), and
            # simplify folds 1.0/0.0 to Constant(inf).
            value = float(expr.value)
            if math.isnan(value):
                return "np.float64(np.nan)"
            if math.isinf(value):
                return "np.float64(np.inf)" if value > 0 else "np.float64(-np.inf)"
            return f"np.float64({value!r})"
        if isinstance(expr, ast.Variable):
            return _arg_name(expr.name)
        key = expr.canonical()
        cached = self._cse.get(key)
        if cached is not None:
            return cached
        if isinstance(expr, ast.UnaryOp):
            if expr.operator != "-":
                raise EvaluationError(f"unknown unary operator {expr.operator!r}")
            statement = f"-({self.expression(expr.operand)})"
        elif isinstance(expr, ast.BinaryOp):
            if expr.operator not in ast.ARITHMETIC_OPERATORS:
                raise EvaluationError(f"unknown binary operator {expr.operator!r}")
            left = self.expression(expr.left)
            right = self.expression(expr.right)
            statement = f"{left} {expr.operator} {right}"
        elif isinstance(expr, ast.FunctionCall):
            statement = self._call(expr)
        else:
            raise EvaluationError(f"cannot compile node of type {type(expr).__name__}")
        name = self._temp()
        self.lines.append(f"{name} = {statement}")
        self._cse[key] = name
        return name

    def _call(self, expr: ast.FunctionCall) -> str:
        arguments = [self.expression(argument) for argument in expr.arguments]
        if expr.name in _UNARY_NUMPY:
            if len(arguments) != 1:
                raise EvaluationError(f"function {expr.name!r} expects 1 argument, got {len(arguments)}")
            return f"{_UNARY_NUMPY[expr.name]}({arguments[0]})"
        if expr.name in _BINARY_NUMPY:
            if len(arguments) != 2:
                raise EvaluationError(f"function {expr.name!r} expects 2 arguments, got {len(arguments)}")
            return f"{_BINARY_NUMPY[expr.name]}({arguments[0]}, {arguments[1]})"
        raise UnknownFunctionError(expr.name)

    def constraint(self, constraint: ast.Constraint) -> str:
        """A fragment referencing the boolean array of one atomic constraint."""
        key = constraint.canonical()
        cached = self._cse.get(key)
        if cached is not None:
            return cached
        left = self.expression(constraint.left)
        right = self.expression(constraint.right)
        name = self._temp()
        if constraint.free_variables():
            self.lines.append(f"{name} = {left} {constraint.operator} {right}")
        else:
            # Variable-free conjunct: both sides are scalars, so the result
            # must be broadcast to a batch-length boolean array explicitly.
            self.lines.append(f"{name} = np.full(n, {left} {constraint.operator} {right}, np.bool_)")
        self._cse[key] = name
        return name


#: Header line carrying the sha256 of everything after it (the function body),
#: so :func:`_disk_read` can reject a tampered or truncated cache file.
_BODY_SHA_PREFIX = "# source-sha256: "


def _render(lowered: _Lowered, body: Sequence[str]) -> str:
    """Assemble the final kernel source with its validation header."""
    args = ", ".join(["n"] + [f"v{index}" for index in range(len(lowered.variables))])
    code_lines = [f"def {_KERNEL_FUNC}({args}):"] + [f"    {line}" for line in body]
    code = "\n".join(code_lines) + "\n"
    header = [
        "# qcoral fused kernel (generated; do not edit)",
        f"# version: {KERNEL_VERSION}",
        f"# kind: {lowered.kind}",
        f"# key-sha256: {lowered.digest}",
        f"{_BODY_SHA_PREFIX}{hashlib.sha256(code.encode('utf-8')).hexdigest()}",
    ]
    return "\n".join(header) + "\n" + code


def _generate_source(node: Compilable) -> Tuple[_Lowered, str]:
    """Lower ``node`` and emit its fused kernel source."""
    if isinstance(node, ast.PathCondition):
        lowered, constraints = _lower_path_condition(node)
        emitter = _Emitter()
        body: List[str] = []
        emitter.lines = body
        body.append("out = np.ones(n, dtype=np.bool_)")
        for index, constraint in enumerate(constraints):
            reference = emitter.constraint(constraint)
            body.append(f"out &= {reference}")
            if index + 1 < len(constraints):
                # Same short-circuit the closure evaluator applies between
                # conjuncts: once nothing survives, skip the rest.
                body.append("if not out.any():")
                body.append("    return out")
        body.append("return out")
        return lowered, _render(lowered, body)

    if isinstance(node, ast.ConstraintSet):
        lowered, renamed_pcs = _lower_constraint_set(node)
        emitter = _Emitter()
        body = emitter.lines
        body.append("out = np.zeros(n, dtype=np.bool_)")
        for constraints in renamed_pcs:
            if not constraints:
                body.append("out |= np.ones(n, dtype=np.bool_)")
                continue
            references = [emitter.constraint(constraint) for constraint in constraints]
            # No per-disjunct short-circuit here: temporaries are shared
            # across disjuncts (the CSE win on shared path prefixes), so a
            # skipped conjunct could starve a later disjunct of its input.
            body.append(f"out |= {' & '.join(references)}")
        body.append("return out")
        return lowered, _render(lowered, body)

    raise EvaluationError(f"cannot build a kernel for node of type {type(node).__name__}")


# --------------------------------------------------------------------------- #
# Persistent on-disk source cache
# --------------------------------------------------------------------------- #
#: Normalised values of :data:`DISK_CACHE_ENV` that disable the disk cache;
#: anything else (including unset or empty) leaves it enabled.
_DISK_CACHE_DISABLED = frozenset({"0", "false", "no", "off"})


def kernel_cache_dir() -> Optional[str]:
    """The persistent cache directory, or None when the disk tier is disabled."""
    if os.environ.get(DISK_CACHE_ENV, "").strip().lower() in _DISK_CACHE_DISABLED:
        return None
    custom = os.environ.get(CACHE_DIR_ENV, "").strip()
    if custom:
        return custom
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "qcoral", "kernels")


def _disk_path(digest: str) -> Optional[str]:
    directory = kernel_cache_dir()
    if directory is None:
        return None
    return os.path.join(directory, f"{digest}.py")


def _disk_read(digest: str) -> Tuple[Optional[str], str]:
    """Validated source from the disk cache plus a status tag.

    Returns ``(source, "hit")`` on success and ``(None, status)`` otherwise,
    where ``status`` distinguishes why the read produced nothing:
    ``"disabled"`` (no disk tier), ``"miss"`` (no file), or ``"stale"``
    (a file existed but failed version/digest/body validation and must be
    regenerated).  The split feeds the ``disk_misses``/``disk_regens``
    counters — a regeneration storm is a cache-invalidation signal that a
    plain miss count would hide.
    """
    path = _disk_path(digest)
    if path is None:
        return None, "disabled"
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError:
        return None, "miss"
    # Trust nothing: a file is reused only when its embedded version and key
    # digest match what we would generate AND the body hashes to the value the
    # header recorded at write time — a tampered or truncated body falls
    # through to regeneration instead of being exec'd.
    if f"# version: {KERNEL_VERSION}" not in source or f"# key-sha256: {digest}" not in source:
        return None, "stale"
    marker = f"\n{_BODY_SHA_PREFIX}"
    _head, separator, remainder = source.partition(marker)
    if not separator:
        return None, "stale"
    recorded, newline, body = remainder.partition("\n")
    if not newline or not body.startswith(f"def {_KERNEL_FUNC}("):
        return None, "stale"
    if hashlib.sha256(body.encode("utf-8")).hexdigest() != recorded.strip():
        return None, "stale"
    return source, "hit"


def _disk_write(digest: str, source: str) -> None:
    """Atomically persist kernel source (best-effort; disk errors are ignored)."""
    path = _disk_path(digest)
    if path is None:
        return
    try:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(source)
            os.replace(temp_path, path)
        except BaseException:
            os.unlink(temp_path)
            raise
    except OSError:  # pragma: no cover - disk-full / permission environments
        return


# --------------------------------------------------------------------------- #
# In-process caches and statistics
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class KernelCacheStats:
    """Snapshot of the kernel cache counters (cumulative per process)."""

    lookups: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    codegens: int = 0
    numba_fallbacks: int = 0
    evictions: int = 0
    disk_misses: int = 0
    disk_regens: int = 0
    compile_seconds: float = 0.0


_CACHE_LOCK = threading.Lock()
#: Compiled kernels: (tier, kind, canonical text) -> callable.
_KERNEL_CACHE: "OrderedDict[Tuple[str, str, str], Callable]" = OrderedDict()
#: Lowering results: (kind, node) -> _Lowered (alpha-canonicalisation is the
#: expensive part of the key, so it is memoised on the hashable AST itself).
_LOWERED_CACHE: "OrderedDict[Tuple[str, Compilable], _Lowered]" = OrderedDict()
_STATS: Dict[str, float] = {
    "lookups": 0,
    "memory_hits": 0,
    "disk_hits": 0,
    "codegens": 0,
    "numba_fallbacks": 0,
    "evictions": 0,
    "disk_misses": 0,
    "disk_regens": 0,
    "compile_seconds": 0.0,
}


def _cache_capacity() -> int:
    raw = os.environ.get(CACHE_SIZE_ENV, "").strip()
    if not raw:
        return DEFAULT_CACHE_SIZE
    try:
        capacity = int(raw)
    except ValueError:
        return DEFAULT_CACHE_SIZE
    return max(1, capacity)


def _lru_get(cache: OrderedDict, key):
    value = cache.get(key)
    if value is not None:
        cache.move_to_end(key)
    return value


def _lru_put(cache: OrderedDict, key, value, count_evictions: bool = False) -> None:
    # Callers hold _CACHE_LOCK, so the eviction counter is updated in place
    # rather than via _bump (which would deadlock on the non-reentrant lock).
    cache[key] = value
    cache.move_to_end(key)
    capacity = _cache_capacity()
    while len(cache) > capacity:
        cache.popitem(last=False)
        if count_evictions:
            _STATS["evictions"] += 1


def kernel_cache_stats() -> KernelCacheStats:
    """Current cache counters (lookups, hits per tier, codegen runs)."""
    with _CACHE_LOCK:
        return KernelCacheStats(**_STATS)  # type: ignore[arg-type]


def kernel_cache_info() -> Dict[str, object]:
    """Structured view of both cache tiers, for observability surfaces.

    Unlike :func:`kernel_cache_stats` (a flat counter snapshot), this nests
    the counters by tier and adds live capacity/occupancy and the disk-tier
    configuration, so a dashboard or ``--verbose`` dump can tell an LRU that
    is thrashing (evictions climbing against a full ``size``) from a disk
    tier that is invalidating (``regenerations`` climbing).
    """
    capacity = _cache_capacity()
    directory = kernel_cache_dir()
    with _CACHE_LOCK:
        stats = dict(_STATS)
        kernel_size = len(_KERNEL_CACHE)
        lowered_size = len(_LOWERED_CACHE)
    return {
        "memory": {
            "hits": int(stats["memory_hits"]),
            "misses": int(stats["lookups"] - stats["memory_hits"]),
            "evictions": int(stats["evictions"]),
            "size": kernel_size,
            "lowered_size": lowered_size,
            "capacity": capacity,
        },
        "disk": {
            "enabled": directory is not None,
            "directory": directory,
            "hits": int(stats["disk_hits"]),
            "misses": int(stats["disk_misses"]),
            "regenerations": int(stats["disk_regens"]),
        },
        "codegens": int(stats["codegens"]),
        "numba_fallbacks": int(stats["numba_fallbacks"]),
        "compile_seconds": float(stats["compile_seconds"]),
    }


def clear_kernel_cache(disk: bool = False) -> None:
    """Drop every in-process kernel (and, with ``disk=True``, the disk cache).

    Counters are reset too, so tests can assert on deltas from zero.
    """
    with _CACHE_LOCK:
        _KERNEL_CACHE.clear()
        _LOWERED_CACHE.clear()
        for counter in _STATS:
            _STATS[counter] = 0
    if disk:
        directory = kernel_cache_dir()
        if directory is None or not os.path.isdir(directory):
            return
        for entry in os.listdir(directory):
            if entry.endswith(".py"):
                try:
                    os.unlink(os.path.join(directory, entry))
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass


def _bump(counter: str, amount: float = 1) -> None:
    with _CACHE_LOCK:
        _STATS[counter] += amount


# --------------------------------------------------------------------------- #
# Compilation and tier application
# --------------------------------------------------------------------------- #
def _compile_source(source: str, digest: str) -> Callable:
    path = _disk_path(digest)
    filename = path if path is not None else f"<qcoral-kernel-{digest[:12]}>"
    namespace: Dict[str, object] = {"np": np}
    code = compile(source, filename, "exec")
    exec(code, namespace)  # noqa: S102 - executing our own generated source
    return namespace[_KERNEL_FUNC]  # type: ignore[return-value]


#: Deterministic probe batch for the numba equivalence check: sign changes,
#: zero, values past 1, extreme magnitudes (overflow-prone), a denormal, and
#: the non-finite specials — the inputs where fastmath/libm skew shows up.
_PROBE_VALUES = np.array(
    [-2.0, -0.5, 0.0, 0.5, 1.0, 3.0, 1e300, -1e300, 5e-324, -5e-324, np.inf, -np.inf, np.nan]
)


def _probe_arrays(arity: int) -> List[np.ndarray]:
    return [np.roll(_PROBE_VALUES, index) for index in range(arity)]


def _apply_numba(fused: Callable, lowered: _Lowered) -> Callable:
    """JIT the fused kernel, verifying it against the Python version.

    The jitted kernel must reproduce the fused kernel bit-for-bit on the
    probe batch (:data:`_PROBE_VALUES`); any compile error or mismatch falls
    back to the fused tier with a one-time warning.  The check is a probe,
    not a proof: agreement on it is strong evidence, not a guarantee of
    bit-identity on every input.
    """
    njit = _numba_njit()
    if njit is None:
        _warn_numba_fallback("numba is not importable")
        _bump("numba_fallbacks")
        return fused
    try:
        jitted = njit(fused)
        probe = _probe_arrays(len(lowered.variables))
        length = _PROBE_VALUES.size
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            expected = fused(length, *probe)
            observed = jitted(length, *probe)
        if not np.array_equal(np.asarray(observed), np.asarray(expected)):
            raise EvaluationError("jitted kernel disagrees with the fused kernel on the probe batch")
    except Exception as error:
        _warn_numba_fallback(str(error))
        _bump("numba_fallbacks")
        return fused
    return jitted


def _lowered_for(node: Compilable) -> _Lowered:
    kind = "pc" if isinstance(node, ast.PathCondition) else "cs"
    key = (kind, node)
    with _CACHE_LOCK:
        cached = _lru_get(_LOWERED_CACHE, key)
    if cached is not None:
        return cached
    if isinstance(node, ast.PathCondition):
        lowered, _ = _lower_path_condition(node)
    else:
        lowered, _ = _lower_constraint_set(node)
    with _CACHE_LOCK:
        _lru_put(_LOWERED_CACHE, key, lowered)
    return lowered


def _raw_kernel(node: Compilable, lowered: _Lowered, tier: str) -> Callable:
    """The positional kernel function for ``lowered`` at ``tier`` (cached)."""
    key = (tier, lowered.kind, lowered.text)
    _bump("lookups")
    with _CACHE_LOCK:
        cached = _lru_get(_KERNEL_CACHE, key)
    if cached is not None:
        _bump("memory_hits")
        return cached
    started = time.perf_counter()
    source, disk_status = _disk_read(lowered.digest)
    if source is not None:
        _bump("disk_hits")
    else:
        if disk_status == "stale":
            _bump("disk_regens")
        elif disk_status == "miss":
            _bump("disk_misses")
        _bump("codegens")
        generated, source = _generate_source(node)
        assert generated.digest == lowered.digest  # key and source must agree
        _disk_write(lowered.digest, source)
    kernel = _compile_source(source, lowered.digest)
    if tier == "numba":
        kernel = _apply_numba(kernel, lowered)
    _bump("compile_seconds", time.perf_counter() - started)
    with _CACHE_LOCK:
        _lru_put(_KERNEL_CACHE, key, kernel, count_evictions=True)
    return kernel


def _make_predicate(kernel: Callable, variables: Tuple[str, ...]) -> CompiledPredicate:
    """Bind a positional kernel to the caller's variable names.

    The wrapper reproduces the closure compiler's input handling: each
    variable array is converted to float64 (once, not per occurrence), a
    missing variable raises :class:`UnknownVariableError`, and the whole
    evaluation runs under the same ``errstate`` so domain errors stay silent
    NaN/inf entries.
    """
    if not variables:

        def constant_predicate(batch: SampleBatch) -> np.ndarray:
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                return kernel(_batch_length(batch))

        return constant_predicate

    def predicate(batch: SampleBatch) -> np.ndarray:
        arrays = []
        for name in variables:
            try:
                values = batch[name]
            except KeyError as exc:
                raise UnknownVariableError(name) from exc
            arrays.append(np.asarray(values, dtype=float))
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            return kernel(len(arrays[0]), *arrays)

    return predicate


def _closure_kernel(node: Compilable) -> CompiledPredicate:
    """The reference closure-tree evaluator, cached like every other tier."""
    kind = "pc" if isinstance(node, ast.PathCondition) else "cs"
    key = ("closure", kind, node.canonical() if kind == "pc" else str(node))
    _bump("lookups")
    with _CACHE_LOCK:
        cached = _lru_get(_KERNEL_CACHE, key)
    if cached is not None:
        _bump("memory_hits")
        return cached
    _bump("codegens")
    started = time.perf_counter()
    if isinstance(node, ast.PathCondition):
        predicate = compile_path_condition(node)
    else:
        predicate = compile_constraint_set(node)
    _bump("compile_seconds", time.perf_counter() - started)
    with _CACHE_LOCK:
        _lru_put(_KERNEL_CACHE, key, predicate, count_evictions=True)
    return predicate


# --------------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------------- #
def _normalise(constraint: Compilable) -> Union[ast.PathCondition, ast.ConstraintSet]:
    if isinstance(constraint, ast.Constraint):
        return ast.PathCondition.of([constraint])
    if isinstance(constraint, (ast.PathCondition, ast.ConstraintSet)):
        return constraint
    raise EvaluationError(f"cannot build a kernel for node of type {type(constraint).__name__}")


def get_kernel(constraint: Compilable, tier: Optional[str] = None) -> CompiledPredicate:
    """The cached compiled predicate of ``constraint`` at the selected tier.

    This is the one entry point every evaluator goes through: it replaces the
    previously scattered ``compile_path_condition`` call sites and their
    ad-hoc per-module caches.  The returned callable has the exact
    :data:`~repro.lang.compiler.CompiledPredicate` contract — sample batch in,
    boolean hit array out — and is bit-identical across tiers.

    Args:
        constraint: An atomic constraint, path condition, or constraint set.
        tier: Kernel tier override for this call; defaults to
            :func:`current_kernel_tier` (``--kernel-tier`` / ``QCORAL_KERNEL_TIER``).
    """
    node = _normalise(constraint)
    resolved = _resolve_tier(tier)
    if resolved == "closure":
        return _closure_kernel(node)
    lowered = _lowered_for(node)
    kernel = _raw_kernel(node, lowered, resolved)
    return _make_predicate(kernel, lowered.variables)


def kernel_source(constraint: Compilable) -> str:
    """The generated fused-kernel source of ``constraint`` (for inspection)."""
    _, source = _generate_source(_normalise(constraint))
    return source


def kernel_key(constraint: Compilable) -> str:
    """The alpha-renamed canonical cache key of ``constraint``."""
    return _lowered_for(_normalise(constraint)).text


def kernel_digest(constraint: Compilable) -> str:
    """The persistent-cache digest (version + kind + canonical key)."""
    return _lowered_for(_normalise(constraint)).digest
