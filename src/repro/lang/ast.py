"""Abstract syntax of the constraint language consumed by qCORAL.

The probabilistic-analysis stage of the paper consumes *path conditions*:
conjunctions of (possibly non-linear) mathematical comparisons over
floating-point input variables.  This module defines

* arithmetic **expressions** — constants, variables, unary/binary operators and
  calls to mathematical functions (``sin``, ``sqrt``, ``pow``, ``atan2``, ...);
* atomic **constraints** — comparisons between two expressions;
* **path conditions** — conjunctions of atomic constraints;
* **constraint sets** — disjunctions of path conditions (the set ``PC^T``).

All nodes are immutable and hashable so they can serve as cache keys, and each
node knows its free variables and a canonical textual form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Tuple, Union

Number = Union[int, float]

# Binary arithmetic operators, in increasing precedence order groups.
ARITHMETIC_OPERATORS = ("+", "-", "*", "/")

# Comparison operators of atomic constraints.
COMPARISON_OPERATORS = ("<=", "<", ">=", ">", "==", "!=")

#: Negation of each comparison operator, used to build the complement of a
#: branch condition during symbolic execution.
NEGATED_COMPARISON = {
    "<=": ">",
    "<": ">=",
    ">=": "<",
    ">": "<=",
    "==": "!=",
    "!=": "==",
}


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
class Expression:
    """Base class of arithmetic expression nodes."""

    __slots__ = ()

    def free_variables(self) -> FrozenSet[str]:
        """Set of variable names occurring in the expression."""
        raise NotImplementedError

    def canonical(self) -> str:
        """Deterministic textual form (used for caching and hashing)."""
        raise NotImplementedError

    def children(self) -> Tuple["Expression", ...]:
        """Direct sub-expressions."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - delegated
        return self.canonical()


@dataclass(frozen=True)
class Constant(Expression):
    """A floating-point literal."""

    value: float

    def free_variables(self) -> FrozenSet[str]:
        return frozenset()

    def canonical(self) -> str:
        return repr(float(self.value))

    def children(self) -> Tuple[Expression, ...]:
        return ()


@dataclass(frozen=True)
class Variable(Expression):
    """A named input variable."""

    name: str

    def free_variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def canonical(self) -> str:
        return self.name

    def children(self) -> Tuple[Expression, ...]:
        return ()


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary operator application; only negation is supported."""

    operator: str
    operand: Expression

    def free_variables(self) -> FrozenSet[str]:
        return self.operand.free_variables()

    def canonical(self) -> str:
        return f"({self.operator}{self.operand.canonical()})"

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Binary arithmetic operator application."""

    operator: str
    left: Expression
    right: Expression

    def free_variables(self) -> FrozenSet[str]:
        return self.left.free_variables() | self.right.free_variables()

    def canonical(self) -> str:
        return f"({self.left.canonical()} {self.operator} {self.right.canonical()})"

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class FunctionCall(Expression):
    """Application of a mathematical function (``sin``, ``pow``, ``atan2``...)."""

    name: str
    arguments: Tuple[Expression, ...]

    def free_variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for argument in self.arguments:
            names |= argument.free_variables()
        return names

    def canonical(self) -> str:
        rendered = ", ".join(argument.canonical() for argument in self.arguments)
        return f"{self.name}({rendered})"

    def children(self) -> Tuple[Expression, ...]:
        return self.arguments


# --------------------------------------------------------------------------- #
# Convenience expression constructors
# --------------------------------------------------------------------------- #
def const(value: Number) -> Constant:
    """Constant expression for ``value``."""
    return Constant(float(value))


def var(name: str) -> Variable:
    """Variable expression named ``name``."""
    return Variable(name)


def add(left: Expression, right: Expression) -> BinaryOp:
    """``left + right``."""
    return BinaryOp("+", left, right)


def sub(left: Expression, right: Expression) -> BinaryOp:
    """``left - right``."""
    return BinaryOp("-", left, right)


def mul(left: Expression, right: Expression) -> BinaryOp:
    """``left * right``."""
    return BinaryOp("*", left, right)


def div(left: Expression, right: Expression) -> BinaryOp:
    """``left / right``."""
    return BinaryOp("/", left, right)


def neg(operand: Expression) -> UnaryOp:
    """``-operand``."""
    return UnaryOp("-", operand)


def call(name: str, *arguments: Expression) -> FunctionCall:
    """Function call ``name(arguments...)``."""
    return FunctionCall(name, tuple(arguments))


# --------------------------------------------------------------------------- #
# Constraints
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Constraint:
    """An atomic constraint ``left <op> right``."""

    operator: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.operator not in COMPARISON_OPERATORS:
            raise ValueError(f"unknown comparison operator {self.operator!r}")

    def free_variables(self) -> FrozenSet[str]:
        """Variables mentioned by either side of the comparison."""
        return self.left.free_variables() | self.right.free_variables()

    def negate(self) -> "Constraint":
        """The complementary constraint (used when a branch is not taken)."""
        return Constraint(NEGATED_COMPARISON[self.operator], self.left, self.right)

    def canonical(self) -> str:
        """Deterministic textual form."""
        return f"{self.left.canonical()} {self.operator} {self.right.canonical()}"

    def __str__(self) -> str:
        return self.canonical()


@dataclass(frozen=True)
class PathCondition:
    """A conjunction of atomic constraints describing one program path."""

    constraints: Tuple[Constraint, ...]
    label: str = ""

    @staticmethod
    def of(constraints: Iterable[Constraint], label: str = "") -> "PathCondition":
        """Build a path condition from any iterable of constraints."""
        return PathCondition(tuple(constraints), label)

    def free_variables(self) -> FrozenSet[str]:
        """Union of the free variables of all conjuncts."""
        names: FrozenSet[str] = frozenset()
        for constraint in self.constraints:
            names |= constraint.free_variables()
        return names

    def conjoin(self, constraint: Constraint) -> "PathCondition":
        """New path condition with one more conjunct appended."""
        return PathCondition(self.constraints + (constraint,), self.label)

    def is_empty(self) -> bool:
        """True for the trivial path condition with no conjuncts."""
        return not self.constraints

    def canonical(self) -> str:
        """Deterministic textual form with sorted conjuncts."""
        return " && ".join(sorted(c.canonical() for c in self.constraints)) or "true"

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self.constraints)

    def __str__(self) -> str:
        return " && ".join(str(c) for c in self.constraints) or "true"


@dataclass(frozen=True)
class ConstraintSet:
    """A disjunction of pairwise-disjoint path conditions (the set ``PC^T``)."""

    path_conditions: Tuple[PathCondition, ...]
    name: str = ""

    @staticmethod
    def of(path_conditions: Iterable[PathCondition], name: str = "") -> "ConstraintSet":
        """Build a constraint set from any iterable of path conditions."""
        return ConstraintSet(tuple(path_conditions), name)

    def free_variables(self) -> FrozenSet[str]:
        """Union of the free variables of all member path conditions."""
        names: FrozenSet[str] = frozenset()
        for pc in self.path_conditions:
            names |= pc.free_variables()
        return names

    def __len__(self) -> int:
        return len(self.path_conditions)

    def __iter__(self) -> Iterator[PathCondition]:
        return iter(self.path_conditions)

    def __str__(self) -> str:
        return " || ".join(f"({pc})" for pc in self.path_conditions) or "false"


# --------------------------------------------------------------------------- #
# Generic traversal helpers
# --------------------------------------------------------------------------- #
def walk(expression: Expression) -> Iterator[Expression]:
    """Pre-order traversal of an expression tree."""
    stack = [expression]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def expression_size(expression: Expression) -> int:
    """Number of nodes in the expression tree."""
    return sum(1 for _ in walk(expression))


def count_operations(expression: Expression) -> Dict[str, int]:
    """Histogram of operators and function names used in the expression."""
    counts: Dict[str, int] = {}
    for node in walk(expression):
        if isinstance(node, BinaryOp):
            counts[node.operator] = counts.get(node.operator, 0) + 1
        elif isinstance(node, UnaryOp):
            counts["neg"] = counts.get("neg", 0) + 1
        elif isinstance(node, FunctionCall):
            counts[node.name] = counts.get(node.name, 0) + 1
    return counts
