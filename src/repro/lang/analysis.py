"""Structural analyses over constraints: statistics and factor extraction.

These helpers back two parts of the paper:

* the per-subject statistics reported in Table 3 (number of paths, number of
  conjuncts, number of arithmetic operations and distinct operator kinds);
* the ``extractRelatedConstraints`` step of Algorithm 2, which projects the
  conjuncts of a path condition onto one block of the variable partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.lang import ast


@dataclass(frozen=True)
class ConstraintSetStatistics:
    """Size statistics of a constraint set, as reported in the paper's Table 3."""

    path_count: int
    conjunct_count: int
    arithmetic_operation_count: int
    distinct_operation_count: int
    variable_count: int

    def as_row(self) -> Tuple[int, int, int, int]:
        """The four size columns of Table 3."""
        return (
            self.path_count,
            self.conjunct_count,
            self.arithmetic_operation_count,
            self.distinct_operation_count,
        )


def constraint_set_statistics(constraint_set: ast.ConstraintSet) -> ConstraintSetStatistics:
    """Compute path/conjunct/operation counts for a constraint set."""
    conjuncts = 0
    arithmetic_operations = 0
    operation_kinds: Set[str] = set()
    variables: Set[str] = set()

    for pc in constraint_set.path_conditions:
        conjuncts += len(pc.constraints)
        variables |= pc.free_variables()
        for constraint in pc.constraints:
            for side in (constraint.left, constraint.right):
                histogram = ast.count_operations(side)
                for kind, count in histogram.items():
                    arithmetic_operations += count
                    operation_kinds.add(kind)

    return ConstraintSetStatistics(
        path_count=len(constraint_set.path_conditions),
        conjunct_count=conjuncts,
        arithmetic_operation_count=arithmetic_operations,
        distinct_operation_count=len(operation_kinds),
        variable_count=len(variables),
    )


def extract_related_constraints(pc: ast.PathCondition, variable_block: Iterable[str]) -> ast.PathCondition:
    """Project ``pc`` onto the conjuncts mentioning any variable in ``variable_block``.

    This is the paper's ``extractRelatedConstraints`` (Algorithm 2): given one
    block of the partition induced by the dependency relation, return the
    conjunction of the constraints that predicate on variables of that block.
    Because the blocks are closed under the dependency relation, a conjunct
    either mentions only variables of the block or none of them.
    """
    block = frozenset(variable_block)
    selected = [c for c in pc.constraints if c.free_variables() & block]
    return ast.PathCondition.of(selected, pc.label)


def group_constraints_by_block(
    pc: ast.PathCondition, blocks: Sequence[FrozenSet[str]]
) -> List[Tuple[FrozenSet[str], ast.PathCondition]]:
    """Split ``pc`` into per-block factors, in the order of ``blocks``.

    Blocks whose factor is empty (no conjunct of ``pc`` mentions them) are
    skipped: they contribute a factor with probability one and can be ignored.
    """
    factors: List[Tuple[FrozenSet[str], ast.PathCondition]] = []
    for block in blocks:
        factor = extract_related_constraints(pc, block)
        if factor.constraints:
            factors.append((block, factor))
    return factors


def shared_constraints(constraint_set: ast.ConstraintSet) -> Dict[str, int]:
    """Histogram of canonical conjunct texts across all path conditions.

    Conjuncts with a count greater than one are exactly the constraints whose
    estimates the PARTCACHE feature can reuse across paths.
    """
    histogram: Dict[str, int] = {}
    for pc in constraint_set.path_conditions:
        for constraint in pc.constraints:
            key = constraint.canonical()
            histogram[key] = histogram.get(key, 0) + 1
    return histogram
