"""Alpha-renaming canonicalisation of path conditions.

The in-memory factor cache keys on the canonical text of a simplified factor,
which distinguishes ``x <= 0.5`` from ``y <= 0.5`` even though the two factors
have identical solution-space measure whenever ``x`` and ``y`` follow the same
input distribution.  Within one run that distinction is harmless, but a
*persistent* store shared across runs — and across subject programs whose
symbolic executors invent different input names — wants the stronger key:
factors that are equal up to a renaming of their variables should share one
entry.

This module computes that key.  :func:`alpha_canonical` rewrites a path
condition over canonical variable names ``$v0, $v1, ...`` (the ``$`` prefix
cannot be produced by the lexer, so canonical names never collide with real
ones) and returns the renamed canonical text together with the original
variables in canonical order.  The caller pairs position ``i`` of that order
with whatever per-variable context must survive the renaming — for the
persistent store, the input distribution of the variable mapped to ``$v{i}``.

Canonicity: for factors with at most :data:`MAX_EXACT_VARIABLES` variables
every renaming is tried and the lexicographically smallest canonical text
wins, so alpha-equivalent factors provably map to the same text.  Larger
factors fall back to a deterministic greedy order (first occurrence in the
shape-sorted conjunct list); the greedy order is still alpha-invariant except
when distinct conjuncts share one shape, in which case two alpha-equivalent
factors may receive different keys — a missed reuse, never an unsound one.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.lang import ast
from repro.lang.substitution import substitute_constraint

#: Prefix of canonical variable names; not a valid identifier start in the
#: constraint language, so renamed factors can never capture a real variable.
CANONICAL_PREFIX = "$v"

#: Up to this many variables, canonicalisation enumerates all renamings and
#: is exact; beyond it, a deterministic greedy order is used (8! = 40320
#: candidate orders is where enumeration stops being negligible).
MAX_EXACT_VARIABLES = 7

#: Placeholder standing in for every variable when computing a conjunct's
#: *shape* (its canonical text with names abstracted away).
_SHAPE_PLACEHOLDER = "$?"


@dataclass(frozen=True)
class AlphaCanonical:
    """A path condition canonicalised up to variable renaming.

    Attributes:
        text: Canonical text of the renamed path condition (sorted conjuncts
            over ``$v0, $v1, ...``).
        variables: The original variable names in canonical order —
            ``variables[i]`` is the variable that ``$v{i}`` stands for.
    """

    text: str
    variables: Tuple[str, ...]


def canonical_name(index: int) -> str:
    """The canonical name of the variable at canonical position ``index``."""
    return f"{CANONICAL_PREFIX}{index}"


def _shape(constraint: ast.Constraint) -> str:
    """Canonical text of a conjunct with every variable name abstracted away."""
    bindings = {name: ast.Variable(_SHAPE_PLACEHOLDER) for name in constraint.free_variables()}
    return substitute_constraint(constraint, bindings).canonical()


def _renamed_text(pc: ast.PathCondition, order: Tuple[str, ...]) -> str:
    """Canonical text of ``pc`` with ``order[i]`` renamed to ``$v{i}``."""
    bindings: Dict[str, ast.Expression] = {
        name: ast.Variable(canonical_name(index)) for index, name in enumerate(order)
    }
    renamed = [substitute_constraint(constraint, bindings) for constraint in pc.constraints]
    return ast.PathCondition.of(renamed, pc.label).canonical()


def _greedy_order(pc: ast.PathCondition) -> Tuple[str, ...]:
    """First-occurrence order over the shape-sorted conjunct list.

    Sorting conjuncts by shape (rather than by their original canonical text)
    keeps the scan order independent of the original variable names, so the
    greedy order is alpha-invariant whenever all conjunct shapes are distinct.
    """
    ordered: List[str] = []
    seen = set()
    for constraint in sorted(pc.constraints, key=lambda c: (_shape(c), c.canonical())):
        for side in (constraint.left, constraint.right):
            for node in ast.walk(side):
                if isinstance(node, ast.Variable) and node.name not in seen:
                    seen.add(node.name)
                    ordered.append(node.name)
    return tuple(ordered)


def alpha_orders(pc: ast.PathCondition) -> List[Tuple[Tuple[str, ...], str]]:
    """All canonical-order candidates achieving the minimal renamed text.

    For small factors this enumerates every permutation of the free variables
    and keeps the orders whose renamed text is lexicographically smallest —
    several orders can tie when the factor is symmetric in some variables
    (``x <= 0 && y <= 0``), and the tie matters to callers that attach
    per-variable context: the persistent store breaks it by fingerprint so
    symmetric factors over differently-distributed variables still key
    deterministically.  Large factors return the single greedy candidate.
    """
    names = sorted(pc.free_variables())
    if not names:
        return [((), pc.canonical())]
    if len(names) > MAX_EXACT_VARIABLES:
        order = _greedy_order(pc)
        return [(order, _renamed_text(pc, order))]

    best: List[Tuple[Tuple[str, ...], str]] = []
    best_text: str | None = None
    for permutation in itertools.permutations(names):
        text = _renamed_text(pc, permutation)
        if best_text is None or text < best_text:
            best = [(permutation, text)]
            best_text = text
        elif text == best_text:
            best.append((permutation, text))
    return best


def alpha_canonical(pc: ast.PathCondition) -> AlphaCanonical:
    """Canonicalise ``pc`` up to variable renaming.

    Among the minimal-text orders the one whose variable tuple is smallest is
    returned, so the result is a pure function of the path condition.  Callers
    that need a context-sensitive tie-break (the store's fingerprints) should
    use :func:`alpha_orders` directly.
    """
    candidates = alpha_orders(pc)
    order, text = min(candidates, key=lambda candidate: candidate[0])
    return AlphaCanonical(text, order)


def alpha_canonical_greedy(pc: ast.PathCondition) -> AlphaCanonical:
    """Canonicalise ``pc`` with the greedy order regardless of variable count.

    Exact canonicalisation enumerates up to ``MAX_EXACT_VARIABLES!`` renamings
    — tens of milliseconds for a 6–7-variable factor, which a cache *key*
    computed once per distinct factor per process cannot afford on hot paths.
    This variant always uses the linear-time greedy order: still a pure
    function of the path condition, still alpha-invariant whenever conjunct
    shapes are distinct, but two alpha-equivalent factors whose conjuncts
    share a shape may key differently.  Use it where a missed match merely
    duplicates work (the kernel cache); the persistent estimate store keeps
    the exact form.
    """
    order = _greedy_order(pc)
    return AlphaCanonical(_renamed_text(pc, order), order)


def alpha_equivalent(first: ast.PathCondition, second: ast.PathCondition) -> bool:
    """True when the two path conditions are equal up to variable renaming."""
    return alpha_canonical(first).text == alpha_canonical(second).text


#: Placeholder standing in for every numeric literal in a skeleton.
_SKELETON_NUMBER = "#"

#: Numeric literals as the constraint language renders them in canonical
#: text: an optional sign inside an expression never survives canonicalisation
#: as part of the literal, so digits with an optional fraction/exponent are
#: enough.
_NUMBER_PATTERN = re.compile(r"\b\d+(?:\.\d+)?(?:[eE][-+]?\d+)?\b")


def skeleton(pc: ast.PathCondition) -> str:
    """The structural skeleton of a factor: alpha-canonical text with every
    numeric literal abstracted to ``#``.

    Two versions of an evolving program typically edit a factor by moving a
    threshold (``sin(c) <= 0.5`` → ``sin(c) <= 0.7``); the skeletons of the
    two revisions are equal while their canonical texts differ, which is how
    the incremental differ pairs an old factor with the edit that replaced
    it.  A skeleton is a *pairing heuristic* only — never a reuse key: reuse
    always goes through the exact store digests of :mod:`repro.store.keys`.
    """
    return _NUMBER_PATTERN.sub(_SKELETON_NUMBER, alpha_canonical(pc).text)
