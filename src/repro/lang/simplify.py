"""Expression and constraint simplification.

Simplification serves two purposes in the reproduction:

* **Canonicalisation** — cache keys for the PARTCACHE feature are built from
  simplified, canonically-printed factors, so syntactically different but
  structurally identical sub-constraints share one cache entry.
* **Performance** — constant sub-expressions produced by the symbolic executor
  (for instance concrete intermediate values folded into a path condition) are
  collapsed before the ICP solver and the samplers see them.

The rewrites are deliberately conservative: only transformations that are exact
over the reals *and* over IEEE floating point for the operand values involved
are applied (constant folding uses the same float semantics as the evaluator).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.lang import ast
from repro.lang.evaluator import evaluate


def simplify_expression(expression: ast.Expression) -> ast.Expression:
    """Bottom-up constant folding and identity elimination."""
    if isinstance(expression, (ast.Constant, ast.Variable)):
        return expression

    if isinstance(expression, ast.UnaryOp):
        operand = simplify_expression(expression.operand)
        if isinstance(operand, ast.Constant):
            return ast.Constant(-operand.value)
        if isinstance(operand, ast.UnaryOp) and operand.operator == "-":
            return operand.operand  # double negation
        return ast.UnaryOp(expression.operator, operand)

    if isinstance(expression, ast.BinaryOp):
        left = simplify_expression(expression.left)
        right = simplify_expression(expression.right)
        folded = _fold_binary(expression.operator, left, right)
        if folded is not None:
            return folded
        return ast.BinaryOp(expression.operator, left, right)

    if isinstance(expression, ast.FunctionCall):
        arguments = tuple(simplify_expression(argument) for argument in expression.arguments)
        if all(isinstance(argument, ast.Constant) for argument in arguments):
            call = ast.FunctionCall(expression.name, arguments)
            value = evaluate(call, {})
            if math.isfinite(value):
                return ast.Constant(value)
            return call
        return ast.FunctionCall(expression.name, arguments)

    return expression


def _fold_binary(operator: str, left: ast.Expression, right: ast.Expression) -> Optional[ast.Expression]:
    """Constant folding and neutral-element elimination for a binary node."""
    left_const = left.value if isinstance(left, ast.Constant) else None
    right_const = right.value if isinstance(right, ast.Constant) else None

    if left_const is not None and right_const is not None:
        value = evaluate(ast.BinaryOp(operator, left, right), {})
        if not math.isnan(value):
            return ast.Constant(value)
        return None

    if operator == "+":
        if left_const == 0.0:
            return right
        if right_const == 0.0:
            return left
    elif operator == "-":
        if right_const == 0.0:
            return left
    elif operator == "*":
        if left_const == 1.0:
            return right
        if right_const == 1.0:
            return left
        if left_const == 0.0 or right_const == 0.0:
            return ast.Constant(0.0)
    elif operator == "/":
        if right_const == 1.0:
            return left
    return None


def simplify_constraint(constraint: ast.Constraint) -> ast.Constraint:
    """Simplify both sides of an atomic constraint."""
    return ast.Constraint(
        constraint.operator,
        simplify_expression(constraint.left),
        simplify_expression(constraint.right),
    )


def simplify_path_condition(pc: ast.PathCondition) -> ast.PathCondition:
    """Simplify every conjunct, dropping exact duplicates.

    Duplicate conjuncts are common in symbolic-execution output (the same
    branch condition re-checked inside a loop body); removing them shrinks the
    work done by both the ICP solver and the samplers without changing the
    solution set.
    """
    seen = set()
    simplified = []
    for constraint in pc.constraints:
        reduced = simplify_constraint(constraint)
        key = reduced.canonical()
        if key not in seen:
            seen.add(key)
            simplified.append(reduced)
    return ast.PathCondition.of(simplified, pc.label)


def simplify_constraint_set(constraint_set: ast.ConstraintSet) -> ast.ConstraintSet:
    """Simplify every member path condition of a disjunction."""
    return ast.ConstraintSet.of(
        (simplify_path_condition(pc) for pc in constraint_set.path_conditions),
        constraint_set.name,
    )
