"""Compilation of constraints to vectorised NumPy evaluators.

Hit-or-miss Monte Carlo evaluates the same path condition on thousands to
millions of samples.  Interpreting the AST once per sample dominates the
analysis time, so this module compiles expressions and path conditions into
functions operating on whole NumPy arrays of samples at once.

The compiled semantics matches :mod:`repro.lang.evaluator` point-wise: domain
errors (square roots of negatives, logs of non-positives, division by zero)
produce NaN/inf entries, and comparisons involving NaN are unsatisfied, so a
sample hitting a domain error simply does not count as a hit.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

import numpy as np

from repro.errors import EvaluationError, UnknownFunctionError, UnknownVariableError
from repro.lang import ast

#: A batch of samples: variable name -> 1-D array of values (equal lengths).
SampleBatch = Mapping[str, np.ndarray]

#: Compiled expression: sample batch -> array of floats.
CompiledExpression = Callable[[SampleBatch], np.ndarray]

#: Compiled predicate: sample batch -> boolean array.
CompiledPredicate = Callable[[SampleBatch], np.ndarray]


_UNARY_UFUNCS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "asin": np.arcsin,
    "acos": np.arccos,
    "atan": np.arctan,
    "sinh": np.sinh,
    "cosh": np.cosh,
    "tanh": np.tanh,
    "exp": np.exp,
    "log": np.log,
    "log10": np.log10,
    "sqrt": np.sqrt,
    "abs": np.abs,
}

_BINARY_UFUNCS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "pow": np.power,
    "atan2": np.arctan2,
    "min": np.minimum,
    "max": np.maximum,
}

_COMPARISON_UFUNCS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "<=": np.less_equal,
    "<": np.less,
    ">=": np.greater_equal,
    ">": np.greater,
    "==": np.equal,
    "!=": np.not_equal,
}


def compile_expression(expression: ast.Expression) -> CompiledExpression:
    """Compile an expression into a vectorised evaluator."""
    if isinstance(expression, ast.Constant):
        value = float(expression.value)

        def eval_constant(batch: SampleBatch, _value: float = value) -> np.ndarray:
            length = _batch_length(batch)
            return np.full(length, _value)

        return eval_constant

    if isinstance(expression, ast.Variable):
        name = expression.name

        def eval_variable(batch: SampleBatch, _name: str = name) -> np.ndarray:
            try:
                return np.asarray(batch[_name], dtype=float)
            except KeyError as exc:
                raise UnknownVariableError(_name) from exc

        return eval_variable

    if isinstance(expression, ast.UnaryOp):
        operand = compile_expression(expression.operand)
        if expression.operator != "-":
            raise EvaluationError(f"unknown unary operator {expression.operator!r}")

        def eval_negation(batch: SampleBatch) -> np.ndarray:
            return -operand(batch)

        return eval_negation

    if isinstance(expression, ast.BinaryOp):
        return _compile_binary(expression)

    if isinstance(expression, ast.FunctionCall):
        return _compile_call(expression)

    raise EvaluationError(f"cannot compile node of type {type(expression).__name__}")


def _compile_binary(expression: ast.BinaryOp) -> CompiledExpression:
    left = compile_expression(expression.left)
    right = compile_expression(expression.right)
    operator = expression.operator

    if operator == "+":
        return lambda batch: left(batch) + right(batch)
    if operator == "-":
        return lambda batch: left(batch) - right(batch)
    if operator == "*":
        return lambda batch: left(batch) * right(batch)
    if operator == "/":

        def eval_division(batch: SampleBatch) -> np.ndarray:
            with np.errstate(divide="ignore", invalid="ignore"):
                return left(batch) / right(batch)

        return eval_division
    raise EvaluationError(f"unknown binary operator {operator!r}")


def _compile_call(expression: ast.FunctionCall) -> CompiledExpression:
    name = expression.name
    compiled_args = [compile_expression(argument) for argument in expression.arguments]

    if name in _UNARY_UFUNCS:
        if len(compiled_args) != 1:
            raise EvaluationError(f"function {name!r} expects 1 argument, got {len(compiled_args)}")
        ufunc = _UNARY_UFUNCS[name]
        argument = compiled_args[0]

        def eval_unary(batch: SampleBatch) -> np.ndarray:
            with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
                return ufunc(argument(batch))

        return eval_unary

    if name in _BINARY_UFUNCS:
        if len(compiled_args) != 2:
            raise EvaluationError(f"function {name!r} expects 2 arguments, got {len(compiled_args)}")
        ufunc = _BINARY_UFUNCS[name]
        first, second = compiled_args

        def eval_binary(batch: SampleBatch) -> np.ndarray:
            with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
                return ufunc(first(batch), second(batch))

        return eval_binary

    raise UnknownFunctionError(name)


def compile_constraint(constraint: ast.Constraint) -> CompiledPredicate:
    """Compile one atomic constraint into a vectorised predicate."""
    left = compile_expression(constraint.left)
    right = compile_expression(constraint.right)
    comparison = _COMPARISON_UFUNCS[constraint.operator]

    def eval_constraint(batch: SampleBatch) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            return comparison(left(batch), right(batch))

    return eval_constraint


def compile_path_condition(pc: ast.PathCondition) -> CompiledPredicate:
    """Compile a conjunction of constraints into a vectorised predicate."""
    predicates = [compile_constraint(constraint) for constraint in pc.constraints]

    def eval_path_condition(batch: SampleBatch) -> np.ndarray:
        length = _batch_length(batch)
        result = np.ones(length, dtype=bool)
        for predicate in predicates:
            result &= predicate(batch)
            if not result.any():
                break
        return result

    return eval_path_condition


def compile_constraint_set(constraint_set: ast.ConstraintSet) -> CompiledPredicate:
    """Compile a disjunction of path conditions into a vectorised predicate."""
    predicates = [compile_path_condition(pc) for pc in constraint_set.path_conditions]

    def eval_constraint_set(batch: SampleBatch) -> np.ndarray:
        length = _batch_length(batch)
        result = np.zeros(length, dtype=bool)
        for predicate in predicates:
            result |= predicate(batch)
        return result

    return eval_constraint_set


def _batch_length(batch: SampleBatch) -> int:
    """Number of samples in a batch (0 when the batch has no variables)."""
    for values in batch.values():
        return len(np.asarray(values))
    return 0
