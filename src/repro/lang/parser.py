"""Parser for the textual constraint language.

Grammar (informal)::

    constraint_set  := path_condition ('||' path_condition)*
    path_condition  := constraint ('&&' constraint)*
    constraint      := expression comparison expression
    comparison      := '<=' | '<' | '>=' | '>' | '==' | '!='
    expression      := term (('+' | '-') term)*
    term            := unary (('*' | '/') unary)*
    unary           := '-' unary | primary
    primary         := NUMBER | IDENT | IDENT '(' expression (',' expression)* ')'
                     | '(' expression ')'

Function names written Java-style (``Math.sin``) are normalised by stripping
the ``Math.`` prefix, so constraints copied from SPF output parse unchanged.
"""

from __future__ import annotations

from typing import List

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.lexer import EOF, IDENT, NUMBER, OPERATOR, PUNCT, TokenStream, tokenize

_COMPARISONS = set(ast.COMPARISON_OPERATORS)


class ConstraintParser:
    """Recursive-descent parser producing :mod:`repro.lang.ast` nodes."""

    def __init__(self, source: str) -> None:
        self._stream = TokenStream(tokenize(source))

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def parse_expression(self) -> ast.Expression:
        """Parse a single arithmetic expression; whole input must be consumed."""
        expression = self._expression()
        self._expect_end()
        return expression

    def parse_constraint(self) -> ast.Constraint:
        """Parse a single atomic constraint; whole input must be consumed."""
        constraint = self._constraint()
        self._expect_end()
        return constraint

    def parse_path_condition(self) -> ast.PathCondition:
        """Parse a conjunction of constraints; whole input must be consumed."""
        pc = self._path_condition()
        self._expect_end()
        return pc

    def parse_constraint_set(self) -> ast.ConstraintSet:
        """Parse a disjunction of path conditions; whole input must be consumed."""
        path_conditions = [self._path_condition()]
        while self._stream.accept(OPERATOR, "||"):
            path_conditions.append(self._path_condition())
        self._expect_end()
        return ast.ConstraintSet.of(path_conditions)

    # ------------------------------------------------------------------ #
    # Grammar rules
    # ------------------------------------------------------------------ #
    def _path_condition(self) -> ast.PathCondition:
        constraints = [self._constraint()]
        while self._stream.accept(OPERATOR, "&&"):
            constraints.append(self._constraint())
        return ast.PathCondition.of(constraints)

    def _constraint(self) -> ast.Constraint:
        # Parenthesised path conditions inside a disjunction are not supported
        # at the constraint level; parentheses here always belong to arithmetic.
        left = self._expression()
        token = self._stream.peek()
        if token.kind != OPERATOR or token.text not in _COMPARISONS:
            raise ParseError(f"expected a comparison operator, found {token.text!r}", token.line, token.column)
        self._stream.advance()
        right = self._expression()
        return ast.Constraint(token.text, left, right)

    def _expression(self) -> ast.Expression:
        node = self._term()
        while True:
            if self._stream.accept(OPERATOR, "+"):
                node = ast.BinaryOp("+", node, self._term())
            elif self._stream.accept(OPERATOR, "-"):
                node = ast.BinaryOp("-", node, self._term())
            else:
                return node

    def _term(self) -> ast.Expression:
        node = self._unary()
        while True:
            if self._stream.accept(OPERATOR, "*"):
                node = ast.BinaryOp("*", node, self._unary())
            elif self._stream.accept(OPERATOR, "/"):
                node = ast.BinaryOp("/", node, self._unary())
            else:
                return node

    def _unary(self) -> ast.Expression:
        if self._stream.accept(OPERATOR, "-"):
            return ast.UnaryOp("-", self._unary())
        if self._stream.accept(OPERATOR, "+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expression:
        token = self._stream.peek()

        if token.kind == NUMBER:
            self._stream.advance()
            return ast.Constant(float(token.text))

        if token.kind == IDENT:
            self._stream.advance()
            name = token.text
            if self._stream.check(PUNCT, "("):
                return self._function_call(name)
            return ast.Variable(name)

        if token.matches(PUNCT, "("):
            self._stream.advance()
            expression = self._expression()
            self._stream.expect(PUNCT, ")")
            return expression

        raise ParseError(f"unexpected token {token.text!r}", token.line, token.column)

    def _function_call(self, name: str) -> ast.FunctionCall:
        normalized = name[5:] if name.startswith("Math.") else name
        self._stream.expect(PUNCT, "(")
        arguments: List[ast.Expression] = []
        if not self._stream.check(PUNCT, ")"):
            arguments.append(self._expression())
            while self._stream.accept(PUNCT, ","):
                arguments.append(self._expression())
        self._stream.expect(PUNCT, ")")
        return ast.FunctionCall(normalized.lower(), tuple(arguments))

    def _expect_end(self) -> None:
        token = self._stream.peek()
        if token.kind != EOF:
            raise ParseError(f"unexpected trailing input {token.text!r}", token.line, token.column)


# --------------------------------------------------------------------------- #
# Module-level convenience functions
# --------------------------------------------------------------------------- #
def parse_expression(source: str) -> ast.Expression:
    """Parse an arithmetic expression from text."""
    return ConstraintParser(source).parse_expression()


def parse_constraint(source: str) -> ast.Constraint:
    """Parse a single atomic constraint from text."""
    return ConstraintParser(source).parse_constraint()


def parse_path_condition(source: str) -> ast.PathCondition:
    """Parse a conjunction (``&&``) of constraints from text."""
    return ConstraintParser(source).parse_path_condition()


def parse_constraint_set(source: str) -> ast.ConstraintSet:
    """Parse a disjunction (``||``) of path conditions from text."""
    return ConstraintParser(source).parse_constraint_set()
