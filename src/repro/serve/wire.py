"""Wire format of the quantification service.

One module owns the translation between HTTP payloads and the Session
facade, so the server's contract is checkable in isolation (no sockets):

* :func:`parse_quantify_payload` — validate a JSON request body (or the
  equivalent URL query parameters) into a :class:`QuantifySpec`.  Every
  malformed input raises :class:`WireError` with an HTTP status, never a
  bare traceback; unknown keys are rejected rather than silently ignored,
  because a typo'd ``"sed"`` that defaulted the seed would break the
  service's bit-identity guarantee without anyone noticing.
* :func:`build_query` — compile a spec into a fluent
  :class:`~repro.api.query.Query` on the shared session.  The spec carries
  only :class:`~repro.core.qcoral.QCoralConfig` overrides, so a served
  request resolves to exactly the config an in-process caller would build —
  the foundation of the "served == in-process at the same seed" contract.
* :func:`error_body` / :func:`sse_event` — the response renderings.

The response body of a successful ``POST /v1/quantify`` is precisely
:meth:`Report.to_dict() <repro.api.report.Report.to_dict>` — the versioned
schema every other surface (``--json``, the ledger) already speaks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.qcoral import QCoralConfig, RoundReport
from repro.errors import ConfigurationError, DomainError, ParseError, ReproError, UsageError

#: Top-level request keys accepted by the quantify endpoints.  ``budget``
#: and ``samples`` are aliases (the CLI says ``--samples``, the ROADMAP says
#: budget); ``max_seconds`` is a client-requested wall-clock ceiling, capped
#: by the server's own limit.
REQUEST_KEYS = frozenset(
    {
        "constraints",
        "domains",
        "method",
        "budget",
        "samples",
        "target_std",
        "max_rounds",
        "initial_fraction",
        "allocation",
        "seed",
        "features",
        "mass_split_boxes",
        "mass_split_adaptive",
        "max_seconds",
    }
)

#: ``features`` sub-keys (the paper's STRAT / PARTCACHE toggles).
FEATURE_KEYS = frozenset({"stratified", "partition_and_cache"})


class WireError(ReproError):
    """A malformed or inadmissible request, carrying its HTTP status."""

    def __init__(self, message: str, *, status: int = 400) -> None:
        self.status = status
        super().__init__(message)


def error_status(error: ReproError) -> int:
    """The HTTP status an engine/validation error maps to.

    Configuration, domain, parse, and usage failures are the client's fault
    (400); anything else is a server-side 500.  :class:`WireError` carries
    its own status.
    """
    if isinstance(error, WireError):
        return error.status
    if isinstance(error, (ConfigurationError, DomainError, ParseError, UsageError)):
        return 400
    return 500


def error_body(status: int, message: str, **extra: Any) -> Dict[str, Any]:
    """The JSON error envelope every non-2xx response carries."""
    payload: Dict[str, Any] = {"status": status, "message": message}
    payload.update(extra)
    return {"error": payload}


@dataclass(frozen=True)
class QuantifySpec:
    """A validated quantify request: constraints + domains + config overrides."""

    constraints: str
    domains: Mapping[str, object]
    settings: Tuple[Tuple[str, Any], ...]
    budget: int
    max_seconds: Optional[float] = None

    def settings_dict(self) -> Dict[str, Any]:
        return dict(self.settings)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise WireError(message)


def _as_int(value: Any, key: str) -> int:
    # bool is an int subclass; a JSON ``true`` budget is a client bug.
    _require(isinstance(value, int) and not isinstance(value, bool), f"{key!r} must be an integer")
    return value


def _as_float(value: Any, key: str) -> float:
    _require(isinstance(value, (int, float)) and not isinstance(value, bool), f"{key!r} must be a number")
    return float(value)


def parse_quantify_payload(payload: Any, *, defaults: Optional[QCoralConfig] = None) -> QuantifySpec:
    """Validate a decoded request body into a :class:`QuantifySpec`.

    ``defaults`` supplies the budget when the request names none (the
    session's base config); every violation raises :class:`WireError` (400).
    """
    _require(isinstance(payload, Mapping), "request body must be a JSON object")
    unknown = sorted(set(payload) - REQUEST_KEYS)
    _require(not unknown, f"unknown request keys {unknown}; accepted keys: {sorted(REQUEST_KEYS)}")

    constraints = payload.get("constraints")
    _require(isinstance(constraints, str) and constraints.strip() != "", "'constraints' must be a non-empty string")

    domains = payload.get("domains")
    _require(
        isinstance(domains, Mapping) and len(domains) > 0,
        "'domains' must be a non-empty object of variable specs",
    )
    for name, spec in domains.items():
        _require(isinstance(name, str) and name != "", "domain variable names must be non-empty strings")
        if isinstance(spec, str):
            continue
        if isinstance(spec, (list, tuple)) and len(spec) == 2:
            continue
        raise WireError(
            f"domain {name!r} must be a distribution spec string (e.g. \"-1:1\", "
            f"\"binomial:20:0.5\") or a two-element [lo, hi] array, not {spec!r}"
        )

    if "budget" in payload and "samples" in payload:
        raise WireError("'budget' and 'samples' are aliases; send only one")

    settings: Dict[str, Any] = {}
    if "method" in payload:
        method = payload["method"]
        _require(isinstance(method, str) and method != "", "'method' must be a non-empty string")
        settings["method"] = method
    raw_budget = payload.get("budget", payload.get("samples"))
    if raw_budget is not None:
        budget = _as_int(raw_budget, "budget")
        _require(budget >= 1, "'budget' must be >= 1")
        settings["samples_per_query"] = budget
    else:
        budget = (defaults if defaults is not None else QCoralConfig()).samples_per_query
    if "target_std" in payload and payload["target_std"] is not None:
        target_std = _as_float(payload["target_std"], "target_std")
        _require(target_std > 0.0, "'target_std' must be > 0")
        settings["target_std"] = target_std
    if "max_rounds" in payload:
        max_rounds = _as_int(payload["max_rounds"], "max_rounds")
        _require(max_rounds >= 1, "'max_rounds' must be >= 1")
        settings["max_rounds"] = max_rounds
    if "initial_fraction" in payload:
        fraction = _as_float(payload["initial_fraction"], "initial_fraction")
        _require(0.0 < fraction <= 1.0, "'initial_fraction' must lie in (0, 1]")
        settings["initial_fraction"] = fraction
    if "allocation" in payload:
        allocation = payload["allocation"]
        _require(isinstance(allocation, str) and allocation != "", "'allocation' must be a non-empty string")
        settings["allocation"] = allocation
    if "seed" in payload and payload["seed"] is not None:
        settings["seed"] = _as_int(payload["seed"], "seed")
    if "mass_split_boxes" in payload:
        settings["mass_split_boxes"] = _as_int(payload["mass_split_boxes"], "mass_split_boxes")
    if "mass_split_adaptive" in payload:
        settings["mass_split_adaptive"] = _as_int(payload["mass_split_adaptive"], "mass_split_adaptive")
    if "features" in payload:
        features = payload["features"]
        _require(isinstance(features, Mapping), "'features' must be an object")
        unknown_features = sorted(set(features) - FEATURE_KEYS)
        _require(not unknown_features, f"unknown feature keys {unknown_features}; accepted: {sorted(FEATURE_KEYS)}")
        for key, value in features.items():
            _require(isinstance(value, bool), f"feature {key!r} must be a boolean")
            settings["stratified" if key == "stratified" else "partition_and_cache"] = value

    max_seconds: Optional[float] = None
    if "max_seconds" in payload and payload["max_seconds"] is not None:
        max_seconds = _as_float(payload["max_seconds"], "max_seconds")
        _require(max_seconds > 0.0, "'max_seconds' must be > 0")

    return QuantifySpec(
        constraints=constraints,
        domains=dict(domains),
        settings=tuple(sorted(settings.items())),
        budget=budget,
        max_seconds=max_seconds,
    )


def payload_from_query_params(params: Mapping[str, List[str]]) -> Dict[str, Any]:
    """Translate URL query parameters into a request payload.

    Mirrors the CLI vocabulary so curl examples stay short::

        /v1/quantify/stream?constraints=x*x+%2B+y*y+<=+1&domain=x=-1:1&domain=y=-1:1&seed=7

    ``domain`` repeats (``name=SPEC``); numeric parameters are parsed here so
    the strict type checks of :func:`parse_quantify_payload` still apply.
    """

    def single(key: str) -> Optional[str]:
        values = params.get(key)
        if not values:
            return None
        if len(values) > 1:
            raise WireError(f"query parameter {key!r} given more than once")
        return values[0]

    payload: Dict[str, Any] = {}
    constraints = single("constraints")
    if constraints is not None:
        payload["constraints"] = constraints
    domains: Dict[str, Any] = {}
    for spec in params.get("domain", []):
        if "=" not in spec:
            raise WireError(f"invalid domain parameter {spec!r}; expected name=SPEC")
        name, distribution = spec.split("=", 1)
        domains[name.strip()] = distribution
    if domains:
        payload["domains"] = domains
    for key, convert in (
        ("seed", int),
        ("budget", int),
        ("samples", int),
        ("max_rounds", int),
        ("mass_split_boxes", int),
        ("mass_split_adaptive", int),
        ("target_std", float),
        ("initial_fraction", float),
        ("max_seconds", float),
    ):
        raw = single(key)
        if raw is not None:
            try:
                payload[key] = convert(raw)
            except ValueError:
                raise WireError(f"query parameter {key}={raw!r} is not a valid {convert.__name__}") from None
    for key in ("method", "allocation"):
        raw = single(key)
        if raw is not None:
            payload[key] = raw
    known = {
        "constraints",
        "domain",
        "seed",
        "budget",
        "samples",
        "max_rounds",
        "mass_split_boxes",
        "mass_split_adaptive",
        "target_std",
        "initial_fraction",
        "max_seconds",
        "method",
        "allocation",
    }
    unknown = sorted(set(params) - known)
    if unknown:
        raise WireError(f"unknown query parameters {unknown}")
    return payload


def build_query(session: Any, spec: QuantifySpec):
    """Compile a spec into a fluent Query on ``session``.

    Engine-side validation failures (unknown method names, malformed
    distribution specs, constraint syntax errors) surface as
    :class:`ReproError` subclasses that :func:`error_status` maps to 400 —
    never as a 500 with a traceback.  Compiling the config here (not in the
    worker thread) makes those 400s synchronous with admission.
    """
    query = session.quantify(spec.constraints, dict(spec.domains))
    settings = spec.settings_dict()
    if settings:
        query = query.configure(**settings)
    # Trigger QCoralConfig validation eagerly: replace() re-runs the
    # dataclass checks, so a bad method/allocation is rejected up front.
    query.compile()
    return query


def round_payload(report: RoundReport) -> Dict[str, Any]:
    """The SSE ``round`` event body (matches Report.to_dict()'s rounds rows)."""
    return {
        "round": report.round_index,
        "allocated": report.allocated,
        "cumulative": report.total_samples,
        "mean": report.mean,
        "std": report.std,
    }


def sse_event(event: str, data: Any) -> bytes:
    """One Server-Sent-Events frame (``event:`` + single-line ``data:``)."""
    return f"event: {event}\ndata: {json.dumps(data, sort_keys=False)}\n\n".encode("utf-8")
