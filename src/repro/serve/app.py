"""Quantification-as-a-service: the asyncio server on the Session facade.

One long-lived :class:`~repro.api.session.Session` — one executor pool, one
persistent estimate store, one run ledger, one metrics hub — answers every
client, which is the paper's economics made infrastructure: repeated traffic
on popular constraint families becomes store hits that draw **zero** samples,
so the marginal cost of a popular query tends to a dictionary lookup.

Endpoints:

* ``POST /v1/quantify`` — a JSON body mirroring :class:`~repro.api.query.Query`
  (constraints, domains, method, budget, target_std, seed, ...); the response
  body is exactly :meth:`Report.to_dict() <repro.api.report.Report.to_dict>`.
  A served run is bit-identical to the in-process query at the same seed.
* ``GET /v1/quantify/stream`` — the same request (JSON body or URL query
  parameters), answered as Server-Sent Events: one ``round`` event per
  adaptive round, then ``report`` and ``done``.  A client disconnect flips
  the engine's early-stop hook, so sampling ends mid-run and the partial
  result still publishes its store deltas.
* ``GET /metrics`` — Prometheus text exposition of the shared hub (engine
  counters and request-level ``serve_*`` metrics side by side).
* ``GET /healthz`` and ``GET /v1/store/stats``.

The engine is synchronous by design (NumPy-bound sampling loops); requests
run it via ``run_in_executor`` on a worker pool sized to the admission
limit, while the event loop stays free to answer health checks and detect
disconnects.  SIGTERM/SIGINT trigger a graceful drain: stop accepting,
early-stop in-flight streams, wait for them to finalise (each run publishes
its store deltas and ledger entry in finalisation), then close the session.
"""

from __future__ import annotations

import asyncio
import functools
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional, Set, Tuple, Union

from repro.api.query import Query
from repro.api.report import Report
from repro.api.session import Session
from repro.core.qcoral import QCoralConfig
from repro.errors import AnalysisError, ReproError
from repro.exec.executor import Executor
from repro.obs import Observability
from repro.obs.ledger import RunLedger
from repro.serve.admission import AdmissionController, AdmissionLimits
from repro.serve.routes import (
    HttpProtocolError,
    HttpRequest,
    read_request,
    start_sse,
    write_json,
    write_text,
)
from repro.serve.wire import (
    QuantifySpec,
    WireError,
    build_query,
    error_body,
    error_status,
    parse_quantify_payload,
    payload_from_query_params,
    round_payload,
    sse_event,
)
from repro.store.backends import EstimateStore

#: Seconds a connection may take to deliver its request head + body.
REQUEST_READ_TIMEOUT = 30.0


class QuantifyServer:
    """The HTTP/SSE quantification service around one shared session.

    Construction mirrors :class:`~repro.api.session.Session` (executor /
    store / ledger specs are passed through); ``limits`` configures
    admission control and ``observability`` the shared metrics hub (one is
    created when not given, so ``/metrics`` always works).  Without a store
    spec the server opens an in-memory store — cross-request reuse is the
    service's headline behaviour, so it is on by default; pass a path to
    make it durable.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 8080,
        executor: Union[None, str, Executor] = None,
        workers: Optional[int] = None,
        store: Union[None, str, EstimateStore] = None,
        store_backend: Optional[str] = None,
        store_readonly: bool = False,
        ledger: Union[None, str, RunLedger] = None,
        ledger_backend: Optional[str] = None,
        defaults: Optional[QCoralConfig] = None,
        limits: Optional[AdmissionLimits] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.limits = limits if limits is not None else AdmissionLimits()
        self.observability = observability if observability is not None else Observability()
        if store is None and store_backend is None:
            store_backend = "memory"
        self.session = Session(
            executor=executor,
            workers=workers,
            store=store,
            store_backend=store_backend,
            store_readonly=store_readonly,
            defaults=defaults,
            observability=self.observability,
            ledger=ledger,
            ledger_backend=ledger_backend,
        )
        self.admission = AdmissionController(self.limits, self.observability)
        self._pool = ThreadPoolExecutor(
            max_workers=self.limits.max_concurrent, thread_name_prefix="qcoral-serve"
        )
        self._stops: Set[threading.Event] = set()
        self._stops_lock = threading.Lock()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped: Optional[asyncio.Event] = None
        self._drain_started = False
        self._routes: Dict[Tuple[str, str], Callable] = {
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/metrics"): self._handle_metrics,
            ("GET", "/v1/store/stats"): self._handle_store_stats,
            ("POST", "/v1/quantify"): self._handle_quantify,
            ("GET", "/v1/quantify/stream"): self._handle_stream,
            ("POST", "/v1/quantify/stream"): self._handle_stream,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port — read the actual one from the
        return value (or :attr:`address`).
        """
        if self._server is not None:
            raise AnalysisError("this server has already been started")
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` of a started server."""
        if self._server is None or not self._server.sockets:
            raise AnalysisError("the server is not listening; call start() first")
        name = self._server.sockets[0].getsockname()
        return name[0], name[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def draining(self) -> bool:
        return self._drain_started

    async def drain(self) -> None:
        """Graceful shutdown: refuse new runs, early-stop in-flight ones,
        wait for them to finalise (bounded by ``limits.drain_timeout``),
        then flush and close the shared session (store + ledger included).

        Idempotent; also the SIGTERM/SIGINT handler of :meth:`run`.
        """
        if self._drain_started:
            return
        self._drain_started = True
        self.admission.begin_drain()
        if self._server is not None:
            self._server.close()
        with self._stops_lock:
            for stop in list(self._stops):
                stop.set()
        deadline = time.monotonic() + self.limits.drain_timeout
        while self.admission.in_flight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, functools.partial(self._pool.shutdown, True))
        self.session.close()
        if self._stopped is not None:
            self._stopped.set()

    def request_drain(self) -> None:
        """Thread-safe drain trigger (used by tests and embedding code)."""
        if self._loop is not None and not self._loop.is_closed():
            asyncio.run_coroutine_threadsafe(self.drain(), self._loop)

    async def _main(
        self,
        *,
        install_signal_handlers: bool,
        announce: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        host, port = await self.start()
        if announce is not None:
            announce(host, port)
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, lambda: asyncio.ensure_future(self.drain()))
                except (NotImplementedError, RuntimeError):  # pragma: no cover - platform dependent
                    pass
        assert self._stopped is not None
        await self._stopped.wait()

    def run(
        self,
        *,
        install_signal_handlers: bool = True,
        announce: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        """Blocking entry point of ``qcoral serve``: serve until drained."""
        asyncio.run(self._main(install_signal_handlers=install_signal_handlers, announce=announce))

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await asyncio.wait_for(read_request(reader), REQUEST_READ_TIMEOUT)
            except asyncio.TimeoutError:
                return
            except HttpProtocolError as error:
                await write_json(writer, 400, error_body(400, str(error)))
                return
            if request is None:
                return
            await self._dispatch(request, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        except asyncio.CancelledError:  # loop shutdown
            raise
        except Exception as error:  # defensive: one bad request must not kill the server
            try:
                await write_json(writer, 500, error_body(500, f"{type(error).__name__}: {error}"))
            except (ConnectionError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: HttpRequest, reader, writer) -> None:
        handler = self._routes.get((request.method, request.path))
        route = request.path if (request.method, request.path) in self._routes else "unknown"
        started = time.perf_counter()
        if handler is None:
            known_paths = {path for _, path in self._routes}
            if request.path in known_paths:
                status = 405
                await write_json(writer, status, error_body(status, f"{request.method} not allowed on {request.path}"))
            else:
                status = 404
                await write_json(writer, status, error_body(status, f"no route for {request.method} {request.path}"))
        else:
            try:
                status = await handler(request, reader, writer)
            except ReproError as error:
                status = error_status(error)
                await write_json(writer, status, error_body(status, str(error)))
        self.observability.count("serve_requests_total", route=route, status=status)
        self.observability.observe("serve_request_seconds", time.perf_counter() - started, route=route)

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #
    async def _handle_healthz(self, request: HttpRequest, reader, writer) -> int:
        from repro import __version__

        store = self.session.store
        payload = {
            "status": "draining" if self._drain_started else "ok",
            "accepting": not self._drain_started,
            "in_flight": self.admission.in_flight,
            "max_concurrent": self.limits.max_concurrent,
            "version": __version__,
            "store": store.describe() if store is not None else None,
        }
        await write_json(writer, 200, payload)
        return 200

    async def _handle_metrics(self, request: HttpRequest, reader, writer) -> int:
        await write_text(
            writer,
            200,
            self.observability.prometheus(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )
        return 200

    async def _handle_store_stats(self, request: HttpRequest, reader, writer) -> int:
        store = self.session.store
        if store is None:
            await write_json(writer, 200, {"store": None, "statistics": None})
            return 200
        statistics = store.statistics
        payload = {
            "store": store.describe(),
            "statistics": {
                "gets": statistics.gets,
                "hits": statistics.hits,
                "misses": statistics.misses,
                "merges": statistics.merges,
                "creates": statistics.creates,
                "writes": statistics.writes,
                "readonly_skips": statistics.readonly_skips,
            },
        }
        await write_json(writer, 200, payload)
        return 200

    def _parse_request_spec(self, request: HttpRequest) -> QuantifySpec:
        payload = request.json_body()
        if payload is None:
            payload = payload_from_query_params(request.query)
            if not payload:
                raise WireError("send the quantify request as a JSON body (or as URL query parameters)")
        return parse_quantify_payload(payload, defaults=self.session.defaults)

    async def _handle_quantify(self, request: HttpRequest, reader, writer) -> int:
        spec = self._parse_request_spec(request)
        with self.admission.admit(budget=spec.budget, route="quantify"):
            query = build_query(self.session, spec)
            deadline = self.admission.deadline_seconds(spec.max_seconds)
            stop = self._register_stop()
            loop = asyncio.get_running_loop()
            try:
                report, stopped = await loop.run_in_executor(
                    self._pool, functools.partial(self._drive, query, stop, deadline, None)
                )
            finally:
                self._unregister_stop(stop)
        headers = {"X-Qcoral-Stopped": stopped} if stopped is not None else None
        await write_json(writer, 200, report.to_dict(), headers=headers)
        return 200

    async def _handle_stream(self, request: HttpRequest, reader, writer) -> int:
        spec = self._parse_request_spec(request)
        with self.admission.admit(budget=spec.budget, route="stream"):
            query = build_query(self.session, spec)
            deadline = self.admission.deadline_seconds(spec.max_seconds)
            stop = self._register_stop()
            loop = asyncio.get_running_loop()
            queue: "asyncio.Queue[Tuple[Optional[str], Any]]" = asyncio.Queue()

            def emit(event: Optional[str], data: Any) -> None:
                loop.call_soon_threadsafe(queue.put_nowait, (event, data))

            def worker() -> None:
                try:
                    report, stopped = self._drive(
                        query, stop, deadline, lambda r: emit("round", round_payload(r))
                    )
                except ReproError as error:
                    emit("error", error_body(error_status(error), str(error))["error"])
                except Exception as error:  # defensive; surfaces in the stream
                    emit("error", {"status": 500, "message": f"{type(error).__name__}: {error}"})
                else:
                    emit("report", report.to_dict())
                    emit("done", {"stopped": stopped})
                emit(None, None)

            await start_sse(writer)
            watcher = asyncio.ensure_future(self._watch_disconnect(reader, stop))
            future = loop.run_in_executor(self._pool, worker)
            try:
                while True:
                    event, data = await queue.get()
                    if event is None:
                        break
                    try:
                        writer.write(sse_event(event, data))
                        await writer.drain()
                    except (ConnectionError, OSError):
                        stop.set()
                        break
            finally:
                watcher.cancel()
                await future
                self._unregister_stop(stop)
        return 200

    async def _watch_disconnect(self, reader: asyncio.StreamReader, stop: threading.Event) -> None:
        """Flip the run's early-stop event when the SSE client goes away."""
        try:
            while True:
                chunk = await reader.read(1024)
                if not chunk:
                    break
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            return
        if not stop.is_set():
            stop.set()
            self.observability.count("serve_stream_disconnects_total")

    # ------------------------------------------------------------------ #
    # The blocking engine driver (runs in the worker pool)
    # ------------------------------------------------------------------ #
    def _drive(
        self,
        query: Query,
        stop: threading.Event,
        deadline_seconds: Optional[float],
        on_round: Optional[Callable],
    ) -> Tuple[Report, Optional[str]]:
        """Drive one run's round stream, honouring stop events and deadlines.

        Both the disconnect/drain signal (``stop``) and the wall-clock
        ceiling use the round stream's early-stop hook, so a truncated run
        finalises normally — caches and store deltas are published, the
        ledger records the partial run — and the report reflects exactly the
        rounds drawn.  Returns the report and the stop reason (None when the
        run finished on its own).
        """
        started = time.monotonic()
        stream = query.stream()
        stopped: Optional[str] = None
        for round_report in stream:
            if on_round is not None:
                on_round(round_report)
            if stopped is None and stop.is_set():
                stopped = "cancelled"
                stream.stop()
            elif stopped is None and deadline_seconds is not None:
                if time.monotonic() - started >= deadline_seconds:
                    stopped = "deadline"
                    stream.stop()
        if stopped is not None:
            self.observability.count("serve_early_stops_total", reason=stopped)
        return stream.report, stopped

    def _register_stop(self) -> threading.Event:
        stop = threading.Event()
        with self._stops_lock:
            self._stops.add(stop)
            if self._drain_started:
                stop.set()
        return stop

    def _unregister_stop(self, stop: threading.Event) -> None:
        with self._stops_lock:
            self._stops.discard(stop)


# --------------------------------------------------------------------- #
# In-thread embedding (tests, the quickstart, the benchmark)
# --------------------------------------------------------------------- #
class ServerHandle:
    """A running server on a background thread; ``stop()`` drains it."""

    def __init__(self, server: QuantifyServer, thread: threading.Thread) -> None:
        self.server = server
        self._thread = thread

    @property
    def url(self) -> str:
        return self.server.url

    def stop(self, timeout: float = 30.0) -> None:
        """Drain the server and join its thread (idempotent)."""
        self.server.request_drain()
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve_in_thread(*, start_timeout: float = 30.0, **kwargs: Any) -> ServerHandle:
    """Start a :class:`QuantifyServer` on a daemon thread and wait for bind.

    ``kwargs`` go to the :class:`QuantifyServer` constructor (use ``port=0``
    for an ephemeral port).  Returns a context-managed :class:`ServerHandle`
    whose exit drains the server gracefully — the same code path as SIGTERM.
    """
    kwargs.setdefault("port", 0)
    server = QuantifyServer(**kwargs)
    ready = threading.Event()
    failure: Dict[str, BaseException] = {}

    async def main() -> None:
        try:
            await server.start()
        except BaseException as error:
            failure["error"] = error
            ready.set()
            raise
        ready.set()
        assert server._stopped is not None
        await server._stopped.wait()

    def target() -> None:
        try:
            asyncio.run(main())
        except BaseException:
            ready.set()

    thread = threading.Thread(target=target, name="qcoral-serve", daemon=True)
    thread.start()
    if not ready.wait(start_timeout):
        raise AnalysisError("the server did not start within the timeout")
    if "error" in failure:
        raise AnalysisError(f"the server failed to start: {failure['error']}") from failure["error"]
    return ServerHandle(server, thread)
