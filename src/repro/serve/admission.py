"""Admission control of the quantification service.

A long-lived shared engine dies by a thousand oversized requests, so the
server gates every run *before* it reaches the executor pool:

* **concurrency** — at most ``max_concurrent`` engine runs in flight; the
  controller rejects the excess immediately with 429 (no hidden queue: a
  client that wants to wait can retry with backoff, a client that queued
  silently would see unbounded latency).
* **budget** — a request asking for more than ``max_budget`` samples is a
  413; the client is told the ceiling so it can re-ask within it.
* **wall clock** — ``max_seconds`` bounds each run's sampling time.  It is
  enforced cooperatively through the round stream's early-stop hook (the
  same mechanism client disconnects use), so a deadline run still finalises,
  publishes its store deltas, and returns the partial report.
* **drain** — once :meth:`AdmissionController.begin_drain` runs, every new
  run is a 503 while in-flight runs finish (early-stopped by the server).

All verdicts are recorded on the metrics hub (``serve_rejections_total`` by
reason, the ``serve_in_flight`` gauge), so ``GET /metrics`` shows admission
pressure live.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.obs import DISABLED, Observability, ensure_observability
from repro.serve.wire import WireError

#: Default cap on concurrent engine runs (and the worker-pool size).
DEFAULT_MAX_CONCURRENT = 4


class AdmissionError(WireError):
    """A request the server refused to run, with the HTTP status and reason."""

    def __init__(self, message: str, *, status: int, reason: str) -> None:
        self.reason = reason
        super().__init__(message, status=status)


@dataclass(frozen=True)
class AdmissionLimits:
    """The server's admission-control knobs.

    ``max_concurrent`` bounds in-flight engine runs (429 beyond it);
    ``max_budget`` bounds per-request sample budgets (413 beyond it; None =
    unlimited); ``max_seconds`` is the per-run wall-clock ceiling enforced
    via early stop (None = unlimited); ``drain_timeout`` bounds how long a
    graceful shutdown waits for early-stopped in-flight runs to finalise.
    """

    max_concurrent: int = DEFAULT_MAX_CONCURRENT
    max_budget: Optional[int] = None
    max_seconds: Optional[float] = None
    drain_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ConfigurationError(f"max_concurrent must be >= 1, got {self.max_concurrent}")
        if self.max_budget is not None and self.max_budget < 1:
            raise ConfigurationError(f"max_budget must be >= 1, got {self.max_budget}")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ConfigurationError(f"max_seconds must be > 0, got {self.max_seconds}")
        if self.drain_timeout < 0:
            raise ConfigurationError(f"drain_timeout must be >= 0, got {self.drain_timeout}")


class AdmissionTicket:
    """One admitted run's slot; release exactly once (context-managed)."""

    def __init__(self, controller: "AdmissionController") -> None:
        self._controller = controller
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class AdmissionController:
    """Thread-safe gate every quantify request passes before running."""

    def __init__(self, limits: AdmissionLimits, observability: Optional[Observability] = None) -> None:
        self.limits = limits
        self._obs = ensure_observability(observability)
        self._lock = threading.Lock()
        self._in_flight = 0
        self._draining = False

    @property
    def in_flight(self) -> int:
        """Engine runs currently holding a slot."""
        with self._lock:
            return self._in_flight

    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` ran; new runs are refused (503)."""
        with self._lock:
            return self._draining

    def begin_drain(self) -> None:
        """Stop admitting new runs (idempotent)."""
        with self._lock:
            self._draining = True

    def admit(self, *, budget: int, route: str = "quantify") -> AdmissionTicket:
        """Claim a run slot or raise :class:`AdmissionError` (429/413/503)."""
        limits = self.limits
        if limits.max_budget is not None and budget > limits.max_budget:
            self._reject("budget")
            raise AdmissionError(
                f"requested budget {budget} exceeds the server's ceiling {limits.max_budget}; "
                f"re-ask with 'budget' <= {limits.max_budget}",
                status=413,
                reason="budget",
            )
        with self._lock:
            if self._draining:
                rejected = "draining"
            elif self._in_flight >= limits.max_concurrent:
                rejected = "capacity"
            else:
                self._in_flight += 1
                if self._obs is not DISABLED:
                    self._obs.gauge("serve_in_flight", self._in_flight)
                return AdmissionTicket(self)
        self._reject(rejected)
        if rejected == "draining":
            raise AdmissionError(
                "the server is draining and no longer accepts new runs",
                status=503,
                reason="draining",
            )
        raise AdmissionError(
            f"all {limits.max_concurrent} run slots are busy; retry with backoff",
            status=429,
            reason="capacity",
        )

    def deadline_seconds(self, requested: Optional[float]) -> Optional[float]:
        """The effective wall-clock ceiling: min(client ask, server limit)."""
        ceiling = self.limits.max_seconds
        if requested is None:
            return ceiling
        if ceiling is None:
            return requested
        return min(requested, ceiling)

    def _release(self) -> None:
        with self._lock:
            self._in_flight -= 1
            remaining = self._in_flight
        if self._obs is not DISABLED:
            self._obs.gauge("serve_in_flight", remaining)

    def _reject(self, reason: str) -> None:
        if self._obs is not DISABLED:
            self._obs.count("serve_rejections_total", reason=reason)
