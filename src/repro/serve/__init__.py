"""Quantification-as-a-service: the qCORAL engine behind an HTTP/SSE server.

One shared :class:`~repro.api.session.Session` — one executor pool, one
persistent estimate store, one run ledger, one metrics hub — answers every
client.  The contract: a served query is bit-identical to the in-process
:class:`~repro.api.query.Query` at the same seed, and a repeated identical
request is answered from the store with zero samples drawn.

Start a server with ``qcoral serve`` (or :func:`serve_in_thread` when
embedding); talk to it with :class:`ServeClient`.
"""

from repro.serve.admission import (
    DEFAULT_MAX_CONCURRENT,
    AdmissionController,
    AdmissionError,
    AdmissionLimits,
)
from repro.serve.app import QuantifyServer, ServerHandle, serve_in_thread
from repro.serve.client import ServeClient, ServeClientError, ServerEvent, SSEStream
from repro.serve.wire import QuantifySpec, WireError, parse_quantify_payload

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionLimits",
    "DEFAULT_MAX_CONCURRENT",
    "QuantifyServer",
    "QuantifySpec",
    "SSEStream",
    "ServeClient",
    "ServeClientError",
    "ServerEvent",
    "ServerHandle",
    "WireError",
    "parse_quantify_payload",
    "serve_in_thread",
]
