"""Minimal HTTP/1.1 plumbing of the service — stdlib asyncio streams only.

The server deliberately avoids any web framework (the repo's no-new-deps
rule): a quantification service speaks exactly two response shapes — a JSON
document and a Server-Sent-Events stream — and both fit in a page of
protocol code.  Every response closes its connection (``Connection:
close``), which keeps the state machine trivial and makes client disconnects
observable as EOF on the read side, which is precisely the signal the SSE
endpoint turns into an engine early stop.

:func:`read_request` parses one request (request line, headers,
``Content-Length`` body) with hard limits on line length, header count, and
body size, so a misbehaving client cannot balloon server memory.
"""

from __future__ import annotations

import json
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.serve.wire import WireError

#: Reason phrases of the statuses the service emits.
STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Parser limits: a request line / header line, the header count, the body.
MAX_LINE_BYTES = 16 * 1024
MAX_HEADER_COUNT = 64
MAX_BODY_BYTES = 4 * 1024 * 1024


class HttpProtocolError(WireError):
    """A request the HTTP layer could not parse (maps to 400)."""


@dataclass
class HttpRequest:
    """One parsed request: method, split path/query, headers, raw body."""

    method: str
    path: str
    query: Dict[str, List[str]] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json_body(self) -> Optional[Any]:
        """The decoded JSON body, or None when the request carried none."""
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WireError(f"request body is not valid JSON: {error}") from None


async def read_request(reader) -> Optional[HttpRequest]:
    """Parse one HTTP/1.1 request from ``reader`` (None on immediate EOF)."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, ValueError, OSError):
        return None
    if not request_line:
        return None
    if len(request_line) > MAX_LINE_BYTES:
        raise HttpProtocolError("request line too long")
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpProtocolError(f"malformed request line {request_line!r}")
    method, target = parts[0].upper(), parts[1]
    parsed = urllib.parse.urlsplit(target)
    query = urllib.parse.parse_qs(parsed.query, keep_blank_values=True)

    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if len(line) > MAX_LINE_BYTES:
            raise HttpProtocolError("header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise HttpProtocolError("too many headers")
        text = line.decode("latin-1").strip()
        if ":" not in text:
            raise HttpProtocolError(f"malformed header line {text!r}")
        name, value = text.split(":", 1)
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpProtocolError(f"invalid Content-Length {headers['content-length']!r}") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpProtocolError(f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]")
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding", "").lower() == "chunked":
        raise HttpProtocolError("chunked request bodies are not supported; send Content-Length")

    return HttpRequest(
        method=method,
        path=urllib.parse.unquote(parsed.path),
        query=query,
        headers=headers,
        body=body,
    )


def _head(status: int, content_type: str, extra: Optional[Mapping[str, str]] = None) -> bytes:
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if extra:
        lines.extend(f"{name}: {value}" for name, value in extra.items())
    return ("\r\n".join(lines) + "\r\n").encode("latin-1")


async def write_json(writer, status: int, payload: Any, *, headers: Optional[Mapping[str, str]] = None) -> None:
    """Send one complete JSON response and flush it."""
    body = (json.dumps(payload, sort_keys=False) + "\n").encode("utf-8")
    writer.write(_head(status, "application/json; charset=utf-8", headers))
    writer.write(f"Content-Length: {len(body)}\r\n\r\n".encode("latin-1"))
    writer.write(body)
    await writer.drain()


async def write_text(writer, status: int, body: str, *, content_type: str = "text/plain; charset=utf-8") -> None:
    """Send one complete plain-text response (``/metrics``) and flush it."""
    encoded = body.encode("utf-8")
    writer.write(_head(status, content_type))
    writer.write(f"Content-Length: {len(encoded)}\r\n\r\n".encode("latin-1"))
    writer.write(encoded)
    await writer.drain()


async def start_sse(writer) -> None:
    """Send the response head of a Server-Sent-Events stream.

    No ``Content-Length``: the stream ends when the connection closes, which
    the ``Connection: close`` policy makes well-defined for the client.
    """
    writer.write(_head(200, "text/event-stream", {"Cache-Control": "no-cache", "X-Accel-Buffering": "no"}))
    writer.write(b"\r\n")
    await writer.drain()
