"""A small stdlib client of the quantification service.

Used by the quickstart, the serve smoke script, and the benchmark — and
handy interactively::

    from repro.serve import ServeClient

    client = ServeClient("http://127.0.0.1:8080")
    report = client.quantify("x*x + y*y <= 1", {"x": "-1:1", "y": "-1:1"}, seed=7)
    print(report["mean"], report["samples"])

    with client.stream("x*x + y*y <= 1", {"x": "-1:1", "y": "-1:1"}) as rounds:
        for event in rounds:
            print(event.event, event.data)
            if event.event == "round" and event.data["cumulative"] > 10_000:
                break  # closing the stream cancels sampling server-side

Every request opens one connection (the server speaks ``Connection:
close``), so closing an SSE stream mid-run is exactly the disconnect signal
the server turns into an engine early stop.
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from repro.errors import ReproError


class ServeClientError(ReproError):
    """A failed service interaction: transport errors and non-200 answers."""

    def __init__(self, message: str, *, status: Optional[int] = None, payload: Any = None) -> None:
        self.status = status
        self.payload = payload
        super().__init__(message)


@dataclass(frozen=True)
class ServerEvent:
    """One Server-Sent Event: its ``event`` name and decoded JSON ``data``."""

    event: str
    data: Any


class SSEStream:
    """Iterator over a stream's :class:`ServerEvent`\\ s; close() cancels.

    Closing before the stream is exhausted drops the connection, which the
    server observes as a client disconnect and turns into an engine early
    stop — the run still finalises and publishes its store deltas.
    """

    def __init__(self, connection: http.client.HTTPConnection, response: http.client.HTTPResponse) -> None:
        self._connection = connection
        self._response = response
        self._closed = False

    def __iter__(self) -> Iterator[ServerEvent]:
        return self

    def __next__(self) -> ServerEvent:
        event: Optional[str] = None
        data_lines: list = []
        while True:
            if self._closed:
                raise StopIteration
            try:
                raw = self._response.readline()
            except (OSError, http.client.HTTPException):
                self.close()
                raise StopIteration from None
            if not raw:
                self.close()
                raise StopIteration
            line = raw.decode("utf-8").rstrip("\r\n")
            if line == "":
                if event is not None or data_lines:
                    data = "\n".join(data_lines)
                    try:
                        decoded = json.loads(data) if data else None
                    except json.JSONDecodeError as error:
                        raise ServeClientError(f"stream sent malformed event data: {error}") from None
                    return ServerEvent(event or "message", decoded)
                continue
            if line.startswith("event:"):
                event = line[len("event:") :].strip()
            elif line.startswith("data:"):
                data_lines.append(line[len("data:") :].strip())
            # Other SSE fields (comments, ids, retry) are ignored.

    def close(self) -> None:
        """Drop the connection (idempotent); mid-run this cancels sampling."""
        if not self._closed:
            self._closed = True
            # Close the response's file object too: it shares the socket's
            # refcount, so the FIN the server reads as "client went away"
            # is only sent once both handles are closed.
            try:
                self._response.close()
            except OSError:  # pragma: no cover - close never matters here
                pass
            try:
                self._connection.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "SSEStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _build_payload(constraints: str, domains: Mapping[str, Any], options: Mapping[str, Any]) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"constraints": constraints, "domains": dict(domains)}
    payload.update(options)
    return payload


class ServeClient:
    """Talks to one ``qcoral serve`` instance at ``base_url``."""

    def __init__(self, base_url: str, *, timeout: float = 120.0) -> None:
        parsed = urllib.parse.urlsplit(base_url if "//" in base_url else "//" + base_url)
        if parsed.scheme not in ("", "http"):
            raise ServeClientError(f"only http:// service URLs are supported, got {base_url!r}")
        if parsed.hostname is None:
            raise ServeClientError(f"cannot extract a host from {base_url!r}")
        self.host = parsed.hostname
        self.port = parsed.port if parsed.port is not None else 80
        self.timeout = timeout

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def healthz(self) -> Dict[str, Any]:
        return self._json_request("GET", "/healthz")

    def store_stats(self) -> Dict[str, Any]:
        return self._json_request("GET", "/v1/store/stats")

    def metrics(self) -> str:
        """The raw Prometheus exposition text of ``GET /metrics``."""
        status, _content_type, raw = self._raw_request("GET", "/metrics")
        if status != 200:
            raise ServeClientError(f"GET /metrics answered {status}", status=status)
        return raw.decode("utf-8")

    def quantify(self, constraints: str, domains: Mapping[str, Any], **options: Any) -> Dict[str, Any]:
        """``POST /v1/quantify``; returns the versioned ``Report.to_dict()``.

        ``options`` are the request's remaining wire keys (``seed``,
        ``budget``, ``method``, ``target_std``, ``features``, ...).
        """
        payload = _build_payload(constraints, domains, options)
        return self._json_request("POST", "/v1/quantify", payload)

    def stream(self, constraints: str, domains: Mapping[str, Any], **options: Any) -> SSEStream:
        """Open ``POST /v1/quantify/stream`` and return the event iterator."""
        payload = _build_payload(constraints, domains, options)
        connection = self._connect()
        try:
            body = json.dumps(payload).encode("utf-8")
            connection.request(
                "POST", "/v1/quantify/stream", body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
        except (OSError, http.client.HTTPException) as error:
            connection.close()
            raise ServeClientError(f"cannot open stream on {self.url}: {error}") from error
        if response.status != 200:
            raw = response.read()
            connection.close()
            raise ServeClientError(
                self._error_message("POST /v1/quantify/stream", response.status, raw),
                status=response.status,
                payload=_decode_json(raw),
            )
        return SSEStream(connection, response)

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _raw_request(
        self, method: str, path: str, payload: Optional[Any] = None
    ) -> Tuple[int, str, bytes]:
        connection = self._connect()
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            headers = {"Content-Type": "application/json"} if body is not None else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            return response.status, response.getheader("Content-Type", ""), raw
        except (OSError, http.client.HTTPException) as error:
            raise ServeClientError(f"cannot reach {self.url}: {error}") from error
        finally:
            connection.close()

    def _json_request(self, method: str, path: str, payload: Optional[Any] = None) -> Dict[str, Any]:
        status, _content_type, raw = self._raw_request(method, path, payload)
        decoded = _decode_json(raw)
        if status != 200:
            raise ServeClientError(
                self._error_message(f"{method} {path}", status, raw), status=status, payload=decoded
            )
        if not isinstance(decoded, dict):
            raise ServeClientError(f"{method} {path} answered non-object JSON: {raw[:200]!r}", status=status)
        return decoded

    @staticmethod
    def _error_message(what: str, status: int, raw: bytes) -> str:
        decoded = _decode_json(raw)
        if isinstance(decoded, dict) and isinstance(decoded.get("error"), dict):
            return f"{what} answered {status}: {decoded['error'].get('message', '')}"
        return f"{what} answered {status}: {raw[:200]!r}"


def _decode_json(raw: bytes) -> Any:
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
