"""Mini imperative language with bounded symbolic execution (SPF substitute)."""

from repro.symexec.ast import (
    ASSERTION_VIOLATION_EVENT,
    Assignment,
    AssertStatement,
    BooleanAnd,
    BooleanNot,
    BooleanOr,
    Comparison,
    Condition,
    IfStatement,
    InputDeclaration,
    ObserveStatement,
    Program,
    SkipStatement,
    Statement,
    WhileStatement,
)
from repro.symexec.interpreter import ConcreteInterpreter, ExecutionTrace, run_program
from repro.symexec.parser import parse_program
from repro.symexec.symbolic import (
    SymbolicExecutionResult,
    SymbolicExecutor,
    SymbolicPath,
    execute_program,
)

__all__ = [
    "ASSERTION_VIOLATION_EVENT",
    "Program",
    "Statement",
    "InputDeclaration",
    "Assignment",
    "IfStatement",
    "WhileStatement",
    "ObserveStatement",
    "AssertStatement",
    "SkipStatement",
    "Condition",
    "Comparison",
    "BooleanAnd",
    "BooleanOr",
    "BooleanNot",
    "parse_program",
    "ConcreteInterpreter",
    "ExecutionTrace",
    "run_program",
    "SymbolicExecutor",
    "SymbolicExecutionResult",
    "SymbolicPath",
    "execute_program",
]
