"""Parser of the mini imperative language.

Grammar (informal)::

    program    := input_decl* statement*
    input_decl := 'input' IDENT 'in' '[' expr ',' expr ']' ';'
    statement  := assignment | if | while | observe | assert | skip
    assignment := IDENT '=' expr ';'
    if         := 'if' '(' condition ')' block ('else' (block | if))?
    while      := 'while' '(' condition ')' block
    observe    := 'observe' '(' IDENT ')' ';'     -- the event name
    assert     := 'assert' '(' condition ')' ';'
    skip       := 'skip' ';'
    block      := '{' statement* '}'
    condition  := disjunct ('||' disjunct)*
    disjunct   := atom ('&&' atom)*
    atom       := '!' atom | '(' condition ')'* | expr comparison expr

Arithmetic expressions reuse the constraint-language grammar, so every math
function accepted in path conditions is accepted in programs too.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ParseError
from repro.lang import ast as expr_ast
from repro.lang.lexer import IDENT, KEYWORD, NUMBER, OPERATOR, PUNCT, TokenStream, tokenize
from repro.symexec import ast as prog_ast

_KEYWORDS = {"input", "in", "if", "else", "while", "observe", "assert", "skip", "true", "false"}
_COMPARISONS = set(expr_ast.COMPARISON_OPERATORS)


class ProgramParser:
    """Recursive-descent parser for the mini language."""

    def __init__(self, source: str, name: str = "") -> None:
        self._stream = TokenStream(tokenize(source, keywords=_KEYWORDS))
        self._name = name

    def parse_program(self) -> prog_ast.Program:
        """Parse a full program: input declarations followed by the body."""
        inputs: List[prog_ast.InputDeclaration] = []
        while self._stream.check(KEYWORD, "input"):
            inputs.append(self._input_declaration())
        body: List[prog_ast.Statement] = []
        while not self._stream.at_end():
            body.append(self._statement())
        if not inputs:
            token = self._stream.peek()
            raise ParseError("a program needs at least one input declaration", token.line, token.column)
        return prog_ast.Program(tuple(inputs), tuple(body), self._name)

    # ------------------------------------------------------------------ #
    # Declarations and statements
    # ------------------------------------------------------------------ #
    def _input_declaration(self) -> prog_ast.InputDeclaration:
        self._stream.expect(KEYWORD, "input")
        name = self._stream.expect(IDENT).text
        self._stream.expect(KEYWORD, "in")
        self._stream.expect(PUNCT, "[")
        low = self._signed_number()
        self._stream.expect(PUNCT, ",")
        high = self._signed_number()
        self._stream.expect(PUNCT, "]")
        self._stream.expect(PUNCT, ";")
        if low > high:
            raise ParseError(f"input {name!r} has an empty domain [{low}, {high}]")
        return prog_ast.InputDeclaration(name, low, high)

    def _signed_number(self) -> float:
        sign = 1.0
        while self._stream.check(OPERATOR, "-") or self._stream.check(OPERATOR, "+"):
            if self._stream.advance().text == "-":
                sign = -sign
        token = self._stream.expect(NUMBER)
        return sign * float(token.text)

    def _statement(self) -> prog_ast.Statement:
        token = self._stream.peek()
        if token.matches(KEYWORD, "if"):
            return self._if_statement()
        if token.matches(KEYWORD, "while"):
            return self._while_statement()
        if token.matches(KEYWORD, "observe"):
            return self._observe_statement()
        if token.matches(KEYWORD, "assert"):
            return self._assert_statement()
        if token.matches(KEYWORD, "skip"):
            self._stream.advance()
            self._stream.expect(PUNCT, ";")
            return prog_ast.SkipStatement()
        if token.kind == IDENT:
            return self._assignment()
        raise ParseError(f"unexpected token {token.text!r}", token.line, token.column)

    def _assignment(self) -> prog_ast.Assignment:
        name = self._stream.expect(IDENT).text
        self._stream.expect(OPERATOR, "=")
        expression = self._expression()
        self._stream.expect(PUNCT, ";")
        return prog_ast.Assignment(name, expression)

    def _if_statement(self) -> prog_ast.IfStatement:
        self._stream.expect(KEYWORD, "if")
        self._stream.expect(PUNCT, "(")
        condition = self._condition()
        self._stream.expect(PUNCT, ")")
        then_body = self._block()
        else_body: Tuple[prog_ast.Statement, ...] = ()
        if self._stream.accept(KEYWORD, "else"):
            if self._stream.check(KEYWORD, "if"):
                else_body = (self._if_statement(),)
            else:
                else_body = self._block()
        return prog_ast.IfStatement(condition, then_body, else_body)

    def _while_statement(self) -> prog_ast.WhileStatement:
        self._stream.expect(KEYWORD, "while")
        self._stream.expect(PUNCT, "(")
        condition = self._condition()
        self._stream.expect(PUNCT, ")")
        body = self._block()
        return prog_ast.WhileStatement(condition, body)

    def _observe_statement(self) -> prog_ast.ObserveStatement:
        self._stream.expect(KEYWORD, "observe")
        self._stream.expect(PUNCT, "(")
        event = self._stream.expect(IDENT).text
        self._stream.expect(PUNCT, ")")
        self._stream.expect(PUNCT, ";")
        return prog_ast.ObserveStatement(event)

    def _assert_statement(self) -> prog_ast.AssertStatement:
        self._stream.expect(KEYWORD, "assert")
        self._stream.expect(PUNCT, "(")
        condition = self._condition()
        self._stream.expect(PUNCT, ")")
        self._stream.expect(PUNCT, ";")
        return prog_ast.AssertStatement(condition)

    def _block(self) -> Tuple[prog_ast.Statement, ...]:
        self._stream.expect(PUNCT, "{")
        statements: List[prog_ast.Statement] = []
        while not self._stream.check(PUNCT, "}"):
            statements.append(self._statement())
        self._stream.expect(PUNCT, "}")
        return tuple(statements)

    # ------------------------------------------------------------------ #
    # Conditions and expressions
    # ------------------------------------------------------------------ #
    def _condition(self) -> prog_ast.Condition:
        condition = self._conjunction()
        while self._stream.accept(OPERATOR, "||"):
            condition = prog_ast.BooleanOr(condition, self._conjunction())
        return condition

    def _conjunction(self) -> prog_ast.Condition:
        condition = self._condition_atom()
        while self._stream.accept(OPERATOR, "&&"):
            condition = prog_ast.BooleanAnd(condition, self._condition_atom())
        return condition

    def _condition_atom(self) -> prog_ast.Condition:
        if self._stream.accept(OPERATOR, "!"):
            return prog_ast.BooleanNot(self._condition_atom())
        # A parenthesis can open either a nested condition or an arithmetic
        # sub-expression; try the condition first and fall back on failure.
        if self._stream.check(PUNCT, "("):
            import copy

            snapshot = copy.deepcopy(self._stream)
            try:
                self._stream.expect(PUNCT, "(")
                condition = self._condition()
                self._stream.expect(PUNCT, ")")
                return condition
            except ParseError:
                self._stream = snapshot
        return self._comparison()

    def _comparison(self) -> prog_ast.Comparison:
        left = self._expression()
        token = self._stream.peek()
        if token.kind != OPERATOR or token.text not in _COMPARISONS:
            raise ParseError(f"expected a comparison operator, found {token.text!r}", token.line, token.column)
        self._stream.advance()
        right = self._expression()
        return prog_ast.Comparison(expr_ast.Constraint(token.text, left, right))

    def _expression(self) -> expr_ast.Expression:
        return self._additive()

    def _additive(self) -> expr_ast.Expression:
        node = self._multiplicative()
        while True:
            if self._stream.accept(OPERATOR, "+"):
                node = expr_ast.BinaryOp("+", node, self._multiplicative())
            elif self._stream.accept(OPERATOR, "-"):
                node = expr_ast.BinaryOp("-", node, self._multiplicative())
            else:
                return node

    def _multiplicative(self) -> expr_ast.Expression:
        node = self._unary()
        while True:
            if self._stream.accept(OPERATOR, "*"):
                node = expr_ast.BinaryOp("*", node, self._unary())
            elif self._stream.accept(OPERATOR, "/"):
                node = expr_ast.BinaryOp("/", node, self._unary())
            else:
                return node

    def _unary(self) -> expr_ast.Expression:
        if self._stream.accept(OPERATOR, "-"):
            return expr_ast.UnaryOp("-", self._unary())
        if self._stream.accept(OPERATOR, "+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> expr_ast.Expression:
        token = self._stream.peek()
        if token.kind == NUMBER:
            self._stream.advance()
            return expr_ast.Constant(float(token.text))
        if token.kind == IDENT:
            self._stream.advance()
            if self._stream.check(PUNCT, "("):
                return self._call(token.text)
            return expr_ast.Variable(token.text)
        if token.matches(PUNCT, "("):
            self._stream.advance()
            expression = self._expression()
            self._stream.expect(PUNCT, ")")
            return expression
        raise ParseError(f"unexpected token {token.text!r} in expression", token.line, token.column)

    def _call(self, name: str) -> expr_ast.FunctionCall:
        normalized = name[5:] if name.startswith("Math.") else name
        self._stream.expect(PUNCT, "(")
        arguments: List[expr_ast.Expression] = []
        if not self._stream.check(PUNCT, ")"):
            arguments.append(self._expression())
            while self._stream.accept(PUNCT, ","):
                arguments.append(self._expression())
        self._stream.expect(PUNCT, ")")
        return expr_ast.FunctionCall(normalized.lower(), tuple(arguments))


def parse_program(source: str, name: str = "") -> prog_ast.Program:
    """Parse a mini-language program from text."""
    return ProgramParser(source, name).parse_program()
