"""Bounded symbolic execution of mini-language programs (the SPF substitute).

The executor explores every feasible program path up to a branch-depth bound,
building for each path a :class:`~repro.lang.ast.PathCondition` over the input
variables together with the set of target events observed on that path.  The
path conditions are pairwise disjoint by construction — every fork adds a
constraint to one path and its negation to the other — which is the property
qCORAL's disjunction rule (Equations 4–6) relies on.

Loops are unrolled; a path that exceeds the bound is flagged ``hit_bound`` and
reported separately, mirroring the paper's treatment of bounded symbolic
execution (Section 3.1): bounded paths are excluded from ``PC^T`` but their
total probability can be quantified as a confidence measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SymbolicExecutionError
from repro.icp.hc4 import constraint_certainly_fails
from repro.intervals.box import Box
from repro.lang import ast as expr_ast
from repro.lang.simplify import simplify_constraint
from repro.lang.substitution import substitute, substitute_constraint
from repro.symexec import ast as prog_ast
from repro.symexec.ast import ASSERTION_VIOLATION_EVENT


@dataclass(frozen=True)
class SymbolicPath:
    """One explored path: its condition, observed events, and bound status."""

    condition: expr_ast.PathCondition
    events: Tuple[str, ...]
    hit_bound: bool = False

    def observed(self, event: str) -> bool:
        """True when the target event occurs on this path."""
        return event in self.events


@dataclass(frozen=True)
class SymbolicExecutionResult:
    """All paths produced by one symbolic execution run."""

    program: prog_ast.Program
    paths: Tuple[SymbolicPath, ...]
    truncated: bool = False

    @property
    def path_count(self) -> int:
        """Number of explored (non-bounded) paths."""
        return len(self.paths)

    def events(self) -> Tuple[str, ...]:
        """Every event name observed on some path, sorted."""
        names: Set[str] = set()
        for path in self.paths:
            names.update(path.events)
        return tuple(sorted(names))

    def constraint_set_for(self, event: str) -> expr_ast.ConstraintSet:
        """The set ``PC^T``: conditions of complete paths observing ``event``."""
        selected = [path.condition for path in self.paths if path.observed(event) and not path.hit_bound]
        return expr_ast.ConstraintSet.of(selected, name=event)

    def constraint_set_against(self, event: str) -> expr_ast.ConstraintSet:
        """The set ``PC^F``: conditions of complete paths *not* observing ``event``."""
        selected = [path.condition for path in self.paths if not path.observed(event) and not path.hit_bound]
        return expr_ast.ConstraintSet.of(selected, name=f"not:{event}")

    def bounded_constraint_set(self) -> expr_ast.ConstraintSet:
        """Conditions of paths that hit the execution bound (confidence measure)."""
        selected = [path.condition for path in self.paths if path.hit_bound]
        return expr_ast.ConstraintSet.of(selected, name="bounded")


@dataclass
class _State:
    """Mutable per-path execution state (cloned at every fork)."""

    environment: Dict[str, expr_ast.Expression]
    condition: List[expr_ast.Constraint]
    events: List[str]
    decisions: int = 0
    hit_bound: bool = False

    def clone(self) -> "_State":
        return _State(
            environment=dict(self.environment),
            condition=list(self.condition),
            events=list(self.events),
            decisions=self.decisions,
            hit_bound=self.hit_bound,
        )


class SymbolicExecutor:
    """Explores program paths and collects path conditions per target event."""

    def __init__(
        self,
        program: prog_ast.Program,
        max_depth: int = 50,
        max_paths: int = 100_000,
        prune_infeasible: bool = True,
    ) -> None:
        if max_depth < 1:
            raise SymbolicExecutionError("max_depth must be at least 1")
        if max_paths < 1:
            raise SymbolicExecutionError("max_paths must be at least 1")
        self._program = program
        self._max_depth = max_depth
        self._max_paths = max_paths
        self._prune_infeasible = prune_infeasible
        self._domain = Box.from_bounds(program.input_bounds())
        self._truncated = False

    def execute(self) -> SymbolicExecutionResult:
        """Run bounded symbolic execution and return every explored path."""
        import sys

        # Path exploration recurses once per executed statement; long unrolled
        # loops need more head-room than CPython's default limit.
        sys.setrecursionlimit(max(sys.getrecursionlimit(), 20_000))
        self._truncated = False
        initial = _State(
            environment={name: expr_ast.Variable(name) for name in self._program.input_names()},
            condition=[],
            events=[],
        )
        finished: List[SymbolicPath] = []
        self._execute_block(self._program.body, 0, initial, finished)
        return SymbolicExecutionResult(self._program, tuple(finished), truncated=self._truncated)

    # ------------------------------------------------------------------ #
    # Statement execution (continuation-passing over the statement list)
    # ------------------------------------------------------------------ #
    def _execute_block(
        self,
        statements: Sequence[prog_ast.Statement],
        index: int,
        state: _State,
        finished: List[SymbolicPath],
        continuation: Tuple[Tuple[Sequence[prog_ast.Statement], int], ...] = (),
    ) -> None:
        if len(finished) >= self._max_paths:
            self._truncated = True
            return
        while index >= len(statements):
            if not continuation:
                finished.append(self._finish(state))
                return
            (statements, index), continuation = continuation[0], continuation[1:]

        statement = statements[index]

        if isinstance(statement, prog_ast.Assignment):
            state.environment[statement.name] = substitute(statement.expression, state.environment)
            self._execute_block(statements, index + 1, state, finished, continuation)
            return

        if isinstance(statement, (prog_ast.SkipStatement, prog_ast.InputDeclaration)):
            self._execute_block(statements, index + 1, state, finished, continuation)
            return

        if isinstance(statement, prog_ast.ObserveStatement):
            state.events.append(statement.event)
            self._execute_block(statements, index + 1, state, finished, continuation)
            return

        if isinstance(statement, prog_ast.AssertStatement):
            for branch_state, truth in self._branch(statement.condition, state):
                if not truth:
                    branch_state.events.append(ASSERTION_VIOLATION_EVENT)
                self._execute_block(statements, index + 1, branch_state, finished, continuation)
            return

        if isinstance(statement, prog_ast.IfStatement):
            for branch_state, truth in self._branch(statement.condition, state):
                body = statement.then_body if truth else statement.else_body
                rest = ((statements, index + 1),) + continuation
                self._execute_block(body, 0, branch_state, finished, rest)
            return

        if isinstance(statement, prog_ast.WhileStatement):
            self._execute_loop(statement, statements, index, state, finished, continuation)
            return

        raise SymbolicExecutionError(f"unknown statement type {type(statement).__name__}")

    def _execute_loop(
        self,
        loop: prog_ast.WhileStatement,
        statements: Sequence[prog_ast.Statement],
        index: int,
        state: _State,
        finished: List[SymbolicPath],
        continuation: Tuple[Tuple[Sequence[prog_ast.Statement], int], ...],
    ) -> None:
        for branch_state, truth in self._branch(loop.condition, state):
            if not truth:
                # Loop exit: continue with the statement after the loop.
                self._execute_block(statements, index + 1, branch_state, finished, continuation)
                continue
            if branch_state.decisions >= self._max_depth:
                branch_state.hit_bound = True
                finished.append(self._finish(branch_state))
                continue
            # Loop entry: run the body, then re-evaluate the loop.
            rest = ((statements, index),) + continuation
            self._execute_block(loop.body, 0, branch_state, finished, rest)

    def _finish(self, state: _State) -> SymbolicPath:
        return SymbolicPath(
            condition=expr_ast.PathCondition.of(state.condition),
            events=tuple(state.events),
            hit_bound=state.hit_bound,
        )

    # ------------------------------------------------------------------ #
    # Condition branching (short-circuit forking keeps paths disjoint)
    # ------------------------------------------------------------------ #
    def _branch(self, condition: prog_ast.Condition, state: _State) -> List[Tuple[_State, bool]]:
        if state.decisions >= self._max_depth:
            # The branch-depth bound was hit: stop adding constraints on this
            # path and flag it so it is excluded from PC^T (paper Section 3.1).
            state.hit_bound = True
            return [(state, False)]
        if isinstance(condition, prog_ast.Comparison):
            return self._branch_comparison(condition.constraint, state)
        if isinstance(condition, prog_ast.BooleanNot):
            return [(branch_state, not truth) for branch_state, truth in self._branch(condition.operand, state)]
        if isinstance(condition, prog_ast.BooleanAnd):
            outcomes: List[Tuple[_State, bool]] = []
            for branch_state, truth in self._branch(condition.left, state):
                if not truth:
                    outcomes.append((branch_state, False))
                else:
                    outcomes.extend(self._branch(condition.right, branch_state))
            return outcomes
        if isinstance(condition, prog_ast.BooleanOr):
            outcomes = []
            for branch_state, truth in self._branch(condition.left, state):
                if truth:
                    outcomes.append((branch_state, True))
                else:
                    outcomes.extend(self._branch(condition.right, branch_state))
            return outcomes
        raise SymbolicExecutionError(f"unknown condition type {type(condition).__name__}")

    def _branch_comparison(self, constraint: expr_ast.Constraint, state: _State) -> List[Tuple[_State, bool]]:
        concrete = simplify_constraint(substitute_constraint(constraint, state.environment))
        outcomes: List[Tuple[_State, bool]] = []
        for truth, branch_constraint in ((True, concrete), (False, concrete.negate())):
            if self._is_trivially_decided(branch_constraint) is False:
                continue
            if self._prune_infeasible and branch_constraint.free_variables() and constraint_certainly_fails(
                branch_constraint, self._domain
            ):
                continue
            branch_state = state.clone()
            branch_state.decisions += 1
            if branch_constraint.free_variables():
                branch_state.condition.append(branch_constraint)
            outcomes.append((branch_state, truth))
        return outcomes

    @staticmethod
    def _is_trivially_decided(constraint: expr_ast.Constraint) -> Optional[bool]:
        """True/False for variable-free constraints, True (keep) otherwise."""
        if constraint.free_variables():
            return True
        from repro.lang.evaluator import holds

        return True if holds(constraint, {}) else False


def execute_program(
    program: prog_ast.Program,
    max_depth: int = 50,
    max_paths: int = 100_000,
    prune_infeasible: bool = True,
) -> SymbolicExecutionResult:
    """Convenience wrapper: symbolically execute ``program``."""
    executor = SymbolicExecutor(program, max_depth, max_paths, prune_infeasible)
    return executor.execute()
