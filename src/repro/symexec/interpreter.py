"""Concrete interpreter of the mini language.

The interpreter executes a program on concrete floating-point inputs and
records which target events occur.  It defines the ground-truth semantics the
symbolic executor must agree with — the integration tests sample random inputs
and check that an input observes an event if and only if it satisfies one of
the path conditions the symbolic executor reports for that event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.errors import SymbolicExecutionError
from repro.lang.evaluator import evaluate, holds
from repro.symexec import ast as prog_ast
from repro.symexec.ast import ASSERTION_VIOLATION_EVENT


@dataclass
class ExecutionTrace:
    """Result of a concrete run: final variable values and observed events."""

    values: Dict[str, float]
    events: List[str] = field(default_factory=list)
    hit_bound: bool = False

    def observed(self, event: str) -> bool:
        """True when ``event`` occurred at least once during the run."""
        return event in self.events


class ConcreteInterpreter:
    """Executes programs on concrete inputs with a loop-iteration bound."""

    def __init__(self, program: prog_ast.Program, loop_bound: int = 1000) -> None:
        if loop_bound < 1:
            raise SymbolicExecutionError("loop bound must be at least 1")
        self._program = program
        self._loop_bound = loop_bound

    def run(self, inputs: Mapping[str, float]) -> ExecutionTrace:
        """Execute the program on ``inputs`` and return the trace."""
        values: Dict[str, float] = {}
        for declaration in self._program.inputs:
            if declaration.name not in inputs:
                raise SymbolicExecutionError(f"missing value for input {declaration.name!r}")
            values[declaration.name] = float(inputs[declaration.name])
        trace = ExecutionTrace(values=values)
        self._run_block(self._program.body, trace)
        return trace

    # ------------------------------------------------------------------ #
    # Statement execution
    # ------------------------------------------------------------------ #
    def _run_block(self, statements: Sequence[prog_ast.Statement], trace: ExecutionTrace) -> None:
        for statement in statements:
            self._run_statement(statement, trace)

    def _run_statement(self, statement: prog_ast.Statement, trace: ExecutionTrace) -> None:
        if isinstance(statement, prog_ast.Assignment):
            trace.values[statement.name] = evaluate(statement.expression, trace.values)
            return
        if isinstance(statement, prog_ast.IfStatement):
            if self._evaluate_condition(statement.condition, trace.values):
                self._run_block(statement.then_body, trace)
            else:
                self._run_block(statement.else_body, trace)
            return
        if isinstance(statement, prog_ast.WhileStatement):
            iterations = 0
            while self._evaluate_condition(statement.condition, trace.values):
                if iterations >= self._loop_bound:
                    trace.hit_bound = True
                    break
                self._run_block(statement.body, trace)
                iterations += 1
            return
        if isinstance(statement, prog_ast.ObserveStatement):
            trace.events.append(statement.event)
            return
        if isinstance(statement, prog_ast.AssertStatement):
            if not self._evaluate_condition(statement.condition, trace.values):
                trace.events.append(ASSERTION_VIOLATION_EVENT)
            return
        if isinstance(statement, (prog_ast.SkipStatement, prog_ast.InputDeclaration)):
            return
        raise SymbolicExecutionError(f"unknown statement type {type(statement).__name__}")

    # ------------------------------------------------------------------ #
    # Condition evaluation
    # ------------------------------------------------------------------ #
    def _evaluate_condition(self, condition: prog_ast.Condition, values: Mapping[str, float]) -> bool:
        if isinstance(condition, prog_ast.Comparison):
            return holds(condition.constraint, values)
        if isinstance(condition, prog_ast.BooleanAnd):
            return self._evaluate_condition(condition.left, values) and self._evaluate_condition(
                condition.right, values
            )
        if isinstance(condition, prog_ast.BooleanOr):
            return self._evaluate_condition(condition.left, values) or self._evaluate_condition(condition.right, values)
        if isinstance(condition, prog_ast.BooleanNot):
            return not self._evaluate_condition(condition.operand, values)
        raise SymbolicExecutionError(f"unknown condition type {type(condition).__name__}")


def run_program(program: prog_ast.Program, inputs: Mapping[str, float], loop_bound: int = 1000) -> ExecutionTrace:
    """Convenience wrapper: interpret ``program`` on ``inputs``."""
    return ConcreteInterpreter(program, loop_bound).run(inputs)
