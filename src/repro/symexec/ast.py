"""Abstract syntax of the mini imperative language.

The language plays the role Java plays in the paper: programs over bounded
floating-point inputs whose branching structure gives rise to path conditions.
It is intentionally small but expressive enough to model every benchmark
subject used in the evaluation:

* ``input x in [lo, hi];`` — declares a symbolic floating-point input;
* assignments of arithmetic expressions (including math functions);
* ``if`` / ``else`` and bounded ``while`` loops;
* ``observe("event");`` — marks the occurrence of a named target event
  (the paper's ``callSupervisor()``);
* ``assert(cond);`` — violation of the condition is the target event
  ``assert.violation``.

Boolean conditions are conjunctions/disjunctions of arithmetic comparisons;
negation is expressed structurally by the symbolic executor (taking the other
branch), mirroring how SPF builds path conditions from bytecode branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.lang import ast as expr_ast

#: Name of the implicit event raised by a violated ``assert`` statement.
ASSERTION_VIOLATION_EVENT = "assert.violation"


# --------------------------------------------------------------------------- #
# Boolean conditions
# --------------------------------------------------------------------------- #
class Condition:
    """Base class of boolean conditions used in ``if``/``while``/``assert``."""

    __slots__ = ()


@dataclass(frozen=True)
class Comparison(Condition):
    """An atomic comparison between two arithmetic expressions."""

    constraint: expr_ast.Constraint


@dataclass(frozen=True)
class BooleanAnd(Condition):
    """Conjunction of two conditions."""

    left: Condition
    right: Condition


@dataclass(frozen=True)
class BooleanOr(Condition):
    """Disjunction of two conditions."""

    left: Condition
    right: Condition


@dataclass(frozen=True)
class BooleanNot(Condition):
    """Negation of a condition."""

    operand: Condition


# --------------------------------------------------------------------------- #
# Statements
# --------------------------------------------------------------------------- #
class Statement:
    """Base class of statements."""

    __slots__ = ()


@dataclass(frozen=True)
class InputDeclaration(Statement):
    """``input name in [low, high];`` — a bounded symbolic input."""

    name: str
    low: float
    high: float


@dataclass(frozen=True)
class Assignment(Statement):
    """``name = expression;``"""

    name: str
    expression: expr_ast.Expression


@dataclass(frozen=True)
class IfStatement(Statement):
    """``if (condition) { then } else { otherwise }`` (else optional)."""

    condition: Condition
    then_body: Tuple[Statement, ...]
    else_body: Tuple[Statement, ...] = ()


@dataclass(frozen=True)
class WhileStatement(Statement):
    """``while (condition) { body }`` — unrolled up to the execution bound."""

    condition: Condition
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class ObserveStatement(Statement):
    """``observe("event");`` — records the occurrence of a target event."""

    event: str


@dataclass(frozen=True)
class AssertStatement(Statement):
    """``assert(condition);`` — violation raises ``assert.violation``."""

    condition: Condition


@dataclass(frozen=True)
class SkipStatement(Statement):
    """``skip;`` — no effect (useful for writing empty branches)."""


@dataclass(frozen=True)
class Program:
    """A parsed program: input declarations followed by a statement body."""

    inputs: Tuple[InputDeclaration, ...]
    body: Tuple[Statement, ...]
    name: str = ""

    def input_bounds(self) -> dict:
        """Mapping of input name to ``(low, high)`` bounds."""
        return {declaration.name: (declaration.low, declaration.high) for declaration in self.inputs}

    def input_names(self) -> Tuple[str, ...]:
        """Input variable names, in declaration order."""
        return tuple(declaration.name for declaration in self.inputs)
