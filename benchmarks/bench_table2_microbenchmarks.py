"""Table 2 (RQ1): volume estimation accuracy on the geometric microbenchmarks.

For every solid and every sampling budget the paper reports the average
estimate and the standard deviation over 30 runs.  The default (CI) mode runs
3 repetitions at 10^3 and 10^4 samples; setting ``QCORAL_BENCH_FULL=1``
reproduces the full 30-run sweep up to 10^6 samples.
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.conftest import FULL_SCALE, repetitions, sample_counts
except ImportError:  # executed directly: benchmarks/ is sys.path[0]
    from conftest import FULL_SCALE, repetitions, sample_counts
from repro.analysis.results import Table
from repro.analysis.runner import repeat_analysis
from repro.subjects.solids import all_solids, estimate_volume, solid_by_name


def run_solid(solid, samples: int, seed: int):
    estimate = estimate_volume(solid, samples=samples, seed=seed)
    return estimate.volume, estimate.std


def generate_table() -> Table:
    budgets = sample_counts()
    headers = ["analytical"]
    for budget in budgets:
        headers.extend([f"est@{budget}", f"σ@{budget}"])
    table = Table("Table 2 — microbenchmarks (volume estimates)", tuple(headers))
    for solid in all_solids():
        cells = [solid.analytical_volume]
        for budget in budgets:
            aggregated = repeat_analysis(lambda seed: run_solid(solid, budget, seed), runs=repetitions(), base_seed=100)
            cells.extend([aggregated.mean_estimate, aggregated.empirical_std])
        table.add_row(f"{solid.name} [{solid.group}]", *cells)
    return table


class TestTable2Benchmarks:
    @pytest.mark.parametrize("name", ["Cube", "Sphere", "Torus", "Icosahedron"])
    def test_solid_estimation(self, benchmark, name):
        solid = solid_by_name(name)
        estimate = benchmark(lambda: estimate_volume(solid, samples=2_000, seed=3))
        assert estimate.relative_error < 0.15

    def test_cube_exactness(self):
        estimate = estimate_volume(solid_by_name("Cube"), samples=1_000, seed=1)
        assert estimate.std == 0.0
        assert estimate.volume == pytest.approx(8.0, abs=1e-9)

    def test_error_shrinks_with_samples(self):
        solid = solid_by_name("Sphere")
        coarse = repeat_analysis(lambda seed: run_solid(solid, 1_000, seed), runs=repetitions())
        fine = repeat_analysis(lambda seed: run_solid(solid, 10_000, seed), runs=repetitions())
        assert abs(fine.mean_estimate - solid.analytical_volume) <= abs(
            coarse.mean_estimate - solid.analytical_volume
        ) + 0.05


if __name__ == "__main__":
    print(generate_table().render())
    if not FULL_SCALE:
        print("\n(reduced mode: set QCORAL_BENCH_FULL=1 for the 30-run, 10^6-sample sweep)")
