"""Table 3 (RQ2): qCORAL versus numerical integration and VolComp bounds.

For every assertion of the VolComp benchmark suite the paper reports the
NIntegrate point value and time, the VolComp bounding interval and time, and
the qCORAL{STRAT,PARTCACHE} estimate, standard deviation and time (averaged
over 30 runs at 30k samples).  The default mode uses the re-modelled subjects
with reduced sample/repetition counts; ``QCORAL_BENCH_FULL=1`` restores the
paper's parameters.
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.conftest import FULL_SCALE, repetitions
except ImportError:  # executed directly: benchmarks/ is sys.path[0]
    from conftest import FULL_SCALE, repetitions
from repro.analysis.results import Table, format_interval
from repro.analysis.runner import repeat_analysis
from repro.baselines.numint import NumIntConfig, integrate_indicator
from repro.baselines.volcomp import VolCompConfig, bound_probability
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig
from repro.lang.analysis import constraint_set_statistics
from repro.subjects.volcomp_suite import all_assertion_cases, subject_by_name

#: Sampling budget for qCORAL (the paper uses 30k).
SAMPLES = 30_000 if FULL_SCALE else 5_000

#: Budgets for the baselines, scaled down in CI mode.
NUMINT_CONFIG = NumIntConfig(max_regions=20_000 if FULL_SCALE else 2_000, time_budget=60.0)
VOLCOMP_CONFIG = VolCompConfig(max_boxes=4_000 if FULL_SCALE else 800, time_budget=30.0)


def run_qcoral(subject, assertion, samples: int, seed: int):
    constraint_set = subject.constraint_set(assertion)
    analyzer = QCoralAnalyzer(subject.profile(), QCoralConfig.strat_partcache(samples, seed=seed))
    result = analyzer.analyze(constraint_set)
    return result.mean, result.std


def generate_table() -> Table:
    table = Table(
        "Table 3 — linear-constraint comparison (NIntegrate / VolComp / qCORAL)",
        (
            "paths",
            "ands",
            "numint",
            "numint t(s)",
            "volcomp bounds",
            "volcomp t(s)",
            "qcoral est",
            "qcoral σ",
            "qcoral t(s)",
        ),
    )
    for subject, assertion in all_assertion_cases():
        constraint_set = subject.constraint_set(assertion)
        statistics = constraint_set_statistics(constraint_set)
        profile = subject.profile()
        domain = profile.restrict(sorted(constraint_set.free_variables())).domain() if len(constraint_set) else None

        if domain is not None and len(constraint_set):
            numint = integrate_indicator(constraint_set, domain, NUMINT_CONFIG)
            numint_value, numint_time = numint.probability, numint.analysis_time
        else:
            numint_value, numint_time = 0.0, 0.0

        bounds = bound_probability(constraint_set, profile, VOLCOMP_CONFIG)

        aggregated = repeat_analysis(
            lambda seed: run_qcoral(subject, assertion, SAMPLES, seed),
            runs=repetitions(),
            base_seed=7,
        )

        table.add_row(
            f"{subject.name}: {assertion.label}",
            statistics.path_count,
            statistics.conjunct_count,
            numint_value,
            numint_time,
            format_interval(bounds.lower, bounds.upper),
            bounds.analysis_time,
            aggregated.mean_estimate,
            aggregated.mean_reported_std,
            aggregated.mean_time,
        )
    return table


class TestTable3Benchmarks:
    @pytest.mark.parametrize("subject_name,label", [
        ("CORONARY", "tmp >= 5"),
        ("EGFR EPI", "f1 - f >= 0.1"),
        ("INVPEND", "pAng <= 1"),
        ("PACK", "totalWeight >= 5"),
    ])
    def test_qcoral_on_representative_rows(self, benchmark, subject_name, label):
        subject = subject_by_name(subject_name)
        assertion = subject.assertion(label)
        subject.constraint_set(assertion)  # warm the symbolic-execution cache
        mean, _ = benchmark(lambda: run_qcoral(subject, assertion, 2_000, seed=3))
        assert 0.0 <= mean <= 1.05

    def test_qcoral_estimate_within_volcomp_bounds(self):
        """The paper's consistency observation: estimates fall inside the bounds."""
        subject = subject_by_name("EGFR EPI")
        assertion = subject.assertion("f1 - f >= 0.1")
        constraint_set = subject.constraint_set(assertion)
        bounds = bound_probability(constraint_set, subject.profile(), VOLCOMP_CONFIG)
        mean, std = run_qcoral(subject, assertion, 5_000, seed=5)
        assert bounds.lower - 3 * std - 0.02 <= mean <= bounds.upper + 3 * std + 0.02

    def test_volcomp_baseline(self, benchmark):
        subject = subject_by_name("CORONARY")
        constraint_set = subject.constraint_set(subject.assertion("tmp >= 5"))
        result = benchmark(lambda: bound_probability(constraint_set, subject.profile(), VOLCOMP_CONFIG))
        assert result.lower <= result.upper

    def test_numerical_integration_baseline(self, benchmark):
        subject = subject_by_name("INVPEND")
        constraint_set = subject.constraint_set(subject.assertions[0])
        domain = subject.profile().restrict(sorted(constraint_set.free_variables())).domain()
        result = benchmark(lambda: integrate_indicator(constraint_set, domain, NUMINT_CONFIG))
        assert 0.0 <= result.probability <= 1.0


if __name__ == "__main__":
    print(generate_table().render())
    if not FULL_SCALE:
        print("\n(reduced mode: set QCORAL_BENCH_FULL=1 for 30 runs at 30k samples)")
