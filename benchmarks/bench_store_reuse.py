"""Cross-run reuse through the persistent estimate store.

The scenario the store exists for — re-analysis of an evolving program — has
three phases:

* **cold** — an empty store: every factor pays its full sampling cost and the
  counts are written back;
* **warm** — the identical program re-analysed: every factor is served from
  the store, zero samples are drawn (reuse fraction 1.0);
* **mutated** — one branch condition of the program changed: factors touched
  by the mutation are re-sampled, everything else is still served.

Each phase records the factors reused vs sampled, the samples drawn, and the
wall-clock time, for both file-backed store backends (JSONL and SQLite).  The
machine-readable summary lands in ``benchmarks/BENCH_store.json``.

Run directly (``python benchmarks/bench_store_reuse.py``) for the table, or
via pytest for the assertion-checked reduced version.
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

try:
    from benchmarks.conftest import FULL_SCALE, record_bench, write_bench_summary
except ImportError:  # executed directly: benchmarks/ is sys.path[0]
    from conftest import FULL_SCALE, record_bench, write_bench_summary
from repro.analysis.pipeline import ProbabilisticAnalysisPipeline
from repro.analysis.results import Table
from repro.core.qcoral import QCoralConfig
from repro.subjects import programs

#: Summary file of this benchmark family.
SUMMARY = "BENCH_store.json"

#: Per-factor budget (paper scale when QCORAL_BENCH_FULL=1).
BUDGET = 100_000 if FULL_SCALE else 10_000

#: The subject program and a one-constraint mutation of it (the changed branch
#: is the sampled flap-angle factor; the altitude factors are untouched).
SUBJECT = programs.SAFETY_MONITOR
MUTATED = programs.SAFETY_MONITOR.replace("sin(headFlap * tailFlap) > 0.25", "sin(headFlap * tailFlap) > 0.3")
EVENT = programs.SAFETY_MONITOR_EVENT


def run_phase(source: str, store_path: str, backend: str, seed: int) -> dict:
    """One pipeline analysis against the store; returns reuse metrics."""
    config = QCoralConfig.strat_partcache(BUDGET, seed=seed).with_store(store_path, backend)
    started = time.perf_counter()
    with ProbabilisticAnalysisPipeline(source, config=config) as pipeline:
        result = pipeline.analyze(EVENT)
    elapsed = time.perf_counter() - started
    stats = result.cache_statistics
    lookups = stats.store_lookups
    return {
        "mean": result.mean,
        "std": result.std,
        "samples": result.qcoral_result.total_samples,
        "factors": lookups,
        "reused": stats.store_hits,
        "warm_starts": stats.warm_starts,
        "published": stats.store_publishes,
        "merged": stats.store_merges,
        "reuse_fraction": (stats.store_hits / lookups) if lookups else 0.0,
        "time": elapsed,
    }


def collect_results(backend: str, seed: int = 17) -> dict:
    """Cold → warm → mutated sequence on one backend, registered for the dump."""
    suffix = ".jsonl" if backend == "jsonl" else ".db"
    handle, store_path = tempfile.mkstemp(suffix=suffix)
    os.close(handle)
    os.remove(store_path)
    try:
        cold = run_phase(SUBJECT, store_path, backend, seed)
        warm = run_phase(SUBJECT, store_path, backend, seed)
        mutated = run_phase(MUTATED, store_path, backend, seed)
    finally:
        if os.path.exists(store_path):
            os.remove(store_path)
    payload = {
        "backend": backend,
        "budget": BUDGET,
        "cold": cold,
        "warm": warm,
        "mutated": mutated,
        "wall_clock_saved": cold["time"] - warm["time"],
    }
    record_bench(f"store_reuse_{backend}", payload, summary=SUMMARY)
    return payload


def generate_table() -> Table:
    table = Table(
        f"Persistent-store reuse at {BUDGET} samples/factor (safety monitor)",
        ("phase", "samples", "factors", "reused", "fraction", "time"),
    )
    for backend in ("jsonl", "sqlite"):
        payload = collect_results(backend)
        for phase in ("cold", "warm", "mutated"):
            row = payload[phase]
            table.add_row(
                f"{backend}/{phase}",
                phase,
                row["samples"],
                row["factors"],
                row["reused"],
                row["reuse_fraction"],
                f"{row['time']:.3f}s",
            )
    return table


@pytest.mark.parametrize("backend", ("jsonl", "sqlite"))
def test_store_reuse(backend):
    payload = collect_results(backend)
    cold, warm, mutated = payload["cold"], payload["warm"], payload["mutated"]

    # Cold run pays full price and publishes every sampled/exact factor.
    assert cold["reused"] == 0
    assert cold["samples"] > 0
    assert cold["published"] == cold["factors"]

    # Warm re-run of the unchanged subject re-samples zero factors.
    assert warm["reuse_fraction"] == 1.0
    assert warm["samples"] == 0
    assert warm["mean"] == cold["mean"]

    # After a one-constraint mutation only the affected factor is re-sampled.
    assert 0.0 < mutated["reuse_fraction"] < 1.0
    assert mutated["reused"] == mutated["factors"] - 1
    assert 0 < mutated["samples"] <= BUDGET


def main() -> None:
    print(generate_table().render())
    path = write_bench_summary(SUMMARY)
    print(f"\nbenchmark summary written to {path}")


if __name__ == "__main__":
    main()
