"""Overhead of the observability layer on a fixed-seed adaptive run.

The observability layer promises to be *zero-perturbation* (fixed-seed
results bit-identical with instrumentation on, off, or trace-sampled) and
*cheap*: the disabled path is a couple of attribute lookups per site, and the
enabled path only bumps counters and reads monotonic clocks.  This benchmark
measures both claims on a many-round adaptive workload — the shape that
exercises the per-round, per-factor instrumentation hardest:

* **disabled** — no hub attached (the default for every existing caller);
* **enabled** — a full :class:`~repro.obs.Observability` hub recording
  counters, gauges, and histograms at every layer;
* **traced** — the same hub with span tracing on, flushed to JSONL at the
  end of the run (the flush is part of the timed region: it is real cost a
  tracing user pays);
* **ledgered** — the same hub plus a JSONL run ledger the finished report is
  appended to (the diagnostics pass and the ledger write are both inside the
  timed region).

``overhead_ratio`` (enabled / disabled, min-of-repeats) is gated at
:data:`~check_regression.OBSERVABILITY_OVERHEAD_CEILING` (1.05) by
``benchmarks/check_regression.py``; bit-identity of the four estimates is a
hard, tolerance-free gate.

Writes ``benchmarks/BENCH_observability.json``.  Directly runnable::

    PYTHONPATH=src python benchmarks/bench_observability.py --repeats 5
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from typing import Dict, List, Optional

try:
    from benchmarks.conftest import FULL_SCALE, record_bench, repetitions, write_bench_summary
except ImportError:  # executed directly: benchmarks/ is sys.path[0]
    from conftest import FULL_SCALE, record_bench, repetitions, write_bench_summary
from repro.api import Session
from repro.core.qcoral import QCoralConfig
from repro.obs import Observability

#: Summary file this benchmark writes (uploaded as a CI artifact).
SUMMARY_FILE = "BENCH_observability.json"

#: The workload: a stratified constraint with an unreachable convergence
#: target, so the adaptive loop runs all MAX_ROUNDS rounds and the per-round
#: instrumentation fires MAX_ROUNDS times.
CONSTRAINTS = "x*x + y*y <= 1 && y <= x + 1"
BOUNDS = {"x": (-1.0, 1.0), "y": (-1.0, 1.0)}
SEED = 42

#: Total sampling budget and round count (reduced mode keeps CI fast while
#: still timing ~1e6 predicate evaluations per mode).
BUDGET = 40_000_000 if FULL_SCALE else 10_000_000
MAX_ROUNDS = 40 if FULL_SCALE else 20


def _config() -> QCoralConfig:
    return QCoralConfig(
        samples_per_query=BUDGET,
        seed=SEED,
        stratified=True,
        partition_and_cache=True,
        target_std=1e-12,  # unreachable: every round runs
        max_rounds=MAX_ROUNDS,
        initial_fraction=0.1,
    )


def run_once(mode: str, trace_path: Optional[str] = None, ledger_path: Optional[str] = None) -> Dict:
    """One timed run in ``mode`` (disabled/enabled/traced/ledgered)."""
    observability = None
    if mode in ("enabled", "traced", "ledgered"):
        observability = Observability(trace_path=trace_path if mode == "traced" else None)
    started = time.perf_counter()
    with Session(observability=observability, ledger=ledger_path if mode == "ledgered" else None) as session:
        query = session.quantify(CONSTRAINTS, BOUNDS, config=_config())
        report = query.run()
    if mode == "traced" and observability is not None:
        observability.flush_trace()
    elapsed = time.perf_counter() - started
    return {
        "mode": mode,
        "seconds": elapsed,
        "mean": report.mean,
        "std": report.std,
        "samples": report.total_samples,
        "rounds": report.rounds,
    }


def collect_results(repeats: Optional[int] = None) -> Dict:
    """Sweep the four modes, best-of-``repeats``, and register the summary."""
    repeats = repeats if repeats is not None else repetitions(default=3, full=10)
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "bench_trace.jsonl")
        ledger_path = os.path.join(tmp, "bench_ledger.jsonl")
        runs: Dict[str, List[Dict]] = {"disabled": [], "enabled": [], "traced": [], "ledgered": []}
        # Interleave the modes so drift (thermal, other tenants) hits each
        # mode equally instead of biasing whichever ran last.
        for _ in range(repeats):
            for mode in runs:
                for path in (trace_path, ledger_path):
                    if os.path.exists(path):
                        os.unlink(path)
                runs[mode].append(run_once(mode, trace_path=trace_path, ledger_path=ledger_path))
    best = {mode: min(run["seconds"] for run in results) for mode, results in runs.items()}
    estimates = {(run["mean"], run["std"], run["samples"]) for results in runs.values() for run in results}
    payload = {
        "budget": BUDGET,
        "max_rounds": MAX_ROUNDS,
        "seed": SEED,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "disabled_seconds": best["disabled"],
        "enabled_seconds": best["enabled"],
        "traced_seconds": best["traced"],
        "ledgered_seconds": best["ledgered"],
        "overhead_ratio": best["enabled"] / best["disabled"] if best["disabled"] > 0 else 0.0,
        "traced_overhead_ratio": best["traced"] / best["disabled"] if best["disabled"] > 0 else 0.0,
        "ledgered_overhead_ratio": best["ledgered"] / best["disabled"] if best["disabled"] > 0 else 0.0,
        "bit_identical": len(estimates) == 1,
        "mean": runs["disabled"][0]["mean"],
        "rounds": runs["disabled"][0]["rounds"],
        "runs": runs,
    }
    record_bench("observability", payload, summary=SUMMARY_FILE)
    return payload


class TestObservabilityBench:
    def test_bit_identical_and_summary_registered(self):
        payload = collect_results()
        assert payload["bit_identical"], "observability perturbed a fixed-seed estimate"
        assert payload["rounds"] == MAX_ROUNDS
        assert payload["overhead_ratio"] > 0.0

    # The <=5% wall-clock threshold itself gates in check_regression.py
    # against the committed baseline, where the waiver escape hatch lives;
    # asserting it here too would double-report the same noise.


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=None, help="timing repetitions (best-of)")
    args = parser.parse_args(argv)
    payload = collect_results(repeats=args.repeats)
    print(
        f"disabled {payload['disabled_seconds']:.3f}s | "
        f"enabled {payload['enabled_seconds']:.3f}s "
        f"(x{payload['overhead_ratio']:.4f}) | "
        f"traced {payload['traced_seconds']:.3f}s "
        f"(x{payload['traced_overhead_ratio']:.4f}) | "
        f"ledgered {payload['ledgered_seconds']:.3f}s "
        f"(x{payload['ledgered_overhead_ratio']:.4f})"
    )
    print(f"bit identical across modes: {payload['bit_identical']}")
    print(f"summary written to {write_bench_summary(SUMMARY_FILE)}")
    if not FULL_SCALE:
        print("(reduced mode: set QCORAL_BENCH_FULL=1 for the full-scale sweep)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
