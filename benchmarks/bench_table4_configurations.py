"""Table 4 (RQ3): feature ablation on the aerospace subjects.

The paper compares four estimators — a Mathematica Monte Carlo baseline,
qCORAL{}, qCORAL{STRAT} and qCORAL{STRAT,PARTCACHE} — on Apollo and the two
TSAFE modules at 1K, 10K and 100K samples, reporting estimate, σ and time.
This benchmark regenerates those rows on the re-modelled subjects (see
DESIGN.md for the substitution); the expected qualitative shape is

* STRAT reduces σ relative to plain per-path sampling,
* PARTCACHE reduces analysis time (and samples drawn) on subjects whose paths
  share independent factors,
* σ shrinks roughly as 1/sqrt(samples) across the sample sweep.
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.conftest import FULL_SCALE, repetitions, sample_counts
except ImportError:  # executed directly: benchmarks/ is sys.path[0]
    from conftest import FULL_SCALE, repetitions, sample_counts
from repro.analysis.results import Table
from repro.analysis.runner import repeat_analysis
from repro.baselines.plain_mc import plain_monte_carlo
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig
from repro.subjects.aerospace import all_subjects, subject_by_name

#: Depth scale for the synthetic PC families (1.0 → laptop-size subjects).
SCALE = 1.0 if FULL_SCALE else 0.75

#: Sample budgets: the paper sweeps 1K / 10K / 100K.
BUDGETS = sample_counts(default=(1_000,), full=(1_000, 10_000, 100_000))

CONFIGURATIONS = (
    ("Monte Carlo (global)", None),
    ("qCORAL{}", QCoralConfig.plain),
    ("qCORAL{STRAT}", QCoralConfig.strat),
    ("qCORAL{STRAT,PARTCACHE}", QCoralConfig.strat_partcache),
)


def run_configuration(subject, label, config_factory, samples: int, seed: int):
    if config_factory is None:
        result = plain_monte_carlo(subject.constraint_set, subject.profile(), samples, seed=seed)
        return result.mean, result.std
    analyzer = QCoralAnalyzer(subject.profile(), config_factory(samples, seed=seed))
    result = analyzer.analyze(subject.constraint_set)
    return result.mean, result.std


def generate_table() -> Table:
    table = Table(
        "Table 4 — estimator configurations on the aerospace subjects",
        ("samples", "estimate", "σ", "time (s)"),
    )
    for subject in all_subjects(scale=SCALE):
        for samples in BUDGETS:
            for label, factory in CONFIGURATIONS:
                aggregated = repeat_analysis(
                    lambda seed: run_configuration(subject, label, factory, samples, seed),
                    runs=repetitions(default=2),
                    base_seed=31,
                )
                table.add_row(
                    f"{subject.name} / {label}",
                    samples,
                    aggregated.mean_estimate,
                    aggregated.mean_reported_std,
                    aggregated.mean_time,
                )
    return table


class TestTable4Benchmarks:
    @pytest.mark.parametrize("name", ["Conflict", "Turn Logic"])
    def test_full_configuration(self, benchmark, name):
        subject = subject_by_name(name, scale=SCALE)
        mean, _ = benchmark(lambda: run_configuration(subject, "full", QCoralConfig.strat_partcache, 1_000, seed=2))
        assert 0.0 <= mean <= 1.05

    def test_monte_carlo_baseline(self, benchmark):
        subject = subject_by_name("Conflict", scale=SCALE)
        mean, _ = benchmark(lambda: run_configuration(subject, "mc", None, 1_000, seed=2))
        assert 0.0 <= mean <= 1.0

    def test_stratification_reduces_sigma_on_conflict(self):
        subject = subject_by_name("Conflict", scale=SCALE)
        _, plain_sigma = run_configuration(subject, "plain", QCoralConfig.plain, 2_000, seed=9)
        _, strat_sigma = run_configuration(subject, "strat", QCoralConfig.strat, 2_000, seed=9)
        assert strat_sigma <= plain_sigma * 1.5

    def test_partcache_reduces_time_on_apollo(self):
        import time

        subject = subject_by_name("Apollo", scale=0.75)

        def timed(factory):
            started = time.perf_counter()
            run_configuration(subject, "x", factory, 1_000, seed=4)
            return time.perf_counter() - started

        without_cache = timed(QCoralConfig.strat)
        with_cache = timed(QCoralConfig.strat_partcache)
        assert with_cache <= without_cache * 1.2

    def test_configurations_agree_on_the_estimate(self):
        subject = subject_by_name("Turn Logic", scale=0.75)
        means = [run_configuration(subject, label, factory, 4_000, seed=8)[0] for label, factory in CONFIGURATIONS]
        assert max(means) - min(means) < 0.1


if __name__ == "__main__":
    print(generate_table().render())
    if not FULL_SCALE:
        print("\n(reduced mode: set QCORAL_BENCH_FULL=1 for the full 1K/10K/100K sweep)")
