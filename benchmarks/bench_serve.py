"""Served vs in-process quantification: latency, warm hits, throughput.

The service's pitch is that HTTP adds bounded overhead on cold runs and
*removes* nearly all cost on repeated ones (the store answers without
sampling).  This benchmark measures that directly against a real
`qcoral serve` instance on an ephemeral port:

* **cold latency** — the same constraint families quantified in-process on
  a plain :class:`Session` and served over HTTP at the same seed/budget;
  the ratio is the transport + admission overhead.  The cold pass doubles
  as the bit-identity contract check: every served report must equal its
  in-process twin field for field (timing excluded).
* **warm latency** — the identical request repeated against the warm store:
  must draw zero samples and answer in a fraction of the cold time.
* **throughput** — distinct-family request floods at 1/4/8 concurrent
  clients against one shared server (recorded for trajectory, not gated:
  shared-runner scheduling noise dominates).

The summary lands in ``benchmarks/BENCH_serve.json`` and is gated by
``benchmarks/check_regression.py`` (hard gates on bit identity and
zero-sample warm hits; a loose ceiling on the warm/cold latency ratio).

Run directly (``python benchmarks/bench_serve.py``) for the table, or via
pytest for the assertion-checked version.
"""

from __future__ import annotations

import threading
import time

try:
    from benchmarks.conftest import FULL_SCALE, record_bench, write_bench_summary
except ImportError:  # executed directly: benchmarks/ is sys.path[0]
    from conftest import FULL_SCALE, record_bench, write_bench_summary
from repro.analysis.results import Table
from repro.api import Session
from repro.serve import AdmissionLimits, ServeClient, serve_in_thread

#: Summary file of this benchmark family.
SUMMARY = "BENCH_serve.json"

#: Per-request sampling budget.  Big enough that sampling dominates the
#: HTTP roundtrip, so the warm/cold ratio measures the store's win and not
#: connection-setup noise.
BUDGET = 2_000_000 if FULL_SCALE else 1_000_000

#: Cold-pass families (one request each, in-process and served).
COLD_FAMILIES = 8 if FULL_SCALE else 4

#: Warm-hit repetitions of one identical request.
WARM_REPEATS = 20 if FULL_SCALE else 8

#: Concurrent-client sweep: (clients, requests per client).
CLIENT_SWEEP = ((1, 8), (4, 4), (8, 2)) if FULL_SCALE else ((1, 4), (4, 2), (8, 1))

SEED = 17

DOMAINS = {"x": "-1:1", "y": "-1:1"}


def _family(index: int) -> str:
    # Distinct radii make distinct constraint families, so every request in
    # a cold pass actually samples instead of warm-hitting its predecessor.
    return f"x*x + y*y <= {0.5 + index * 0.01}"


def _strip_volatile(report: dict) -> dict:
    clean = {key: value for key, value in report.items() if key not in ("time", "metrics", "diagnostics")}
    return clean


def run_benchmark() -> dict:
    """Measure the three served scenarios; returns the summary payload."""
    # In-process reference: one session, one memory store, same configs.
    in_process_reports = []
    started = time.perf_counter()
    with Session(store_backend="memory") as session:
        for index in range(COLD_FAMILIES):
            report = (
                session.quantify(_family(index), DOMAINS)
                .configure(samples_per_query=BUDGET, seed=SEED)
                .run()
                .to_dict()
            )
            in_process_reports.append(report)
    in_process_seconds = time.perf_counter() - started

    with serve_in_thread(limits=AdmissionLimits(max_concurrent=8)) as handle:
        client = ServeClient(handle.url)

        served_reports = []
        started = time.perf_counter()
        for index in range(COLD_FAMILIES):
            served_reports.append(client.quantify(_family(index), DOMAINS, seed=SEED, budget=BUDGET))
        served_seconds = time.perf_counter() - started

        bit_identical = all(
            _strip_volatile(served) == _strip_volatile(local)
            for served, local in zip(served_reports, in_process_reports)
        )

        # Warm hits: the identical request against the now-warm store.
        warm_samples = []
        started = time.perf_counter()
        for _ in range(WARM_REPEATS):
            warm_samples.append(client.quantify(_family(0), DOMAINS, seed=SEED, budget=BUDGET)["samples"])
        warm_seconds_each = (time.perf_counter() - started) / WARM_REPEATS
        warm_zero_samples = all(samples == 0 for samples in warm_samples)

        # Throughput: distinct families per request so every run samples.
        throughput = []
        family_offset = COLD_FAMILIES
        for clients, per_client in CLIENT_SWEEP:
            errors: list = []

            def flood(base: int, count: int) -> None:
                worker = ServeClient(handle.url)
                for request in range(count):
                    try:
                        worker.quantify(_family(base + request), DOMAINS, seed=SEED, budget=BUDGET)
                    except Exception as error:  # noqa: BLE001 - recorded below
                        errors.append(error)

            threads = [
                threading.Thread(target=flood, args=(family_offset + worker * per_client, per_client))
                for worker in range(clients)
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            family_offset += clients * per_client
            requests = clients * per_client
            throughput.append(
                {
                    "clients": clients,
                    "requests": requests,
                    "errors": len(errors),
                    "seconds": round(elapsed, 4),
                    "requests_per_second": round(requests / elapsed, 2),
                }
            )

    cold_each = served_seconds / COLD_FAMILIES
    return {
        "budget": BUDGET,
        "cold_requests": COLD_FAMILIES,
        "bit_identical": bit_identical,
        "warm_zero_samples": warm_zero_samples,
        "in_process_seconds_each": round(in_process_seconds / COLD_FAMILIES, 4),
        "served_seconds_each": round(cold_each, 4),
        "served_overhead_ratio": round(served_seconds / in_process_seconds, 3),
        "warm_seconds_each": round(warm_seconds_each, 4),
        "warm_over_cold_ratio": round(warm_seconds_each / cold_each, 3),
        "throughput": throughput,
    }


def test_serve_latency_and_throughput():
    payload = run_benchmark()
    # The two hard contracts; latency ratios are gated by check_regression.
    assert payload["bit_identical"], "served reports diverged from in-process runs"
    assert payload["warm_zero_samples"], "a repeated identical request drew samples"
    assert payload["warm_over_cold_ratio"] < 0.75, payload
    assert all(row["errors"] == 0 for row in payload["throughput"]), payload
    record_bench("serve", payload, summary=SUMMARY)


def main() -> None:
    payload = run_benchmark()
    table = Table(
        title=f"Served vs in-process quantification (budget {BUDGET}, seed {SEED})",
        headers=("seconds/request", "note"),
    )
    table.add_row("in-process cold", f"{payload['in_process_seconds_each']:.4f}", "plain Session")
    table.add_row(
        "served cold", f"{payload['served_seconds_each']:.4f}", f"overhead x{payload['served_overhead_ratio']:.2f}"
    )
    table.add_row(
        "served warm", f"{payload['warm_seconds_each']:.4f}", f"{payload['warm_over_cold_ratio']:.0%} of cold, 0 samples"
    )
    print(table.render())
    print(f"bit identical: {payload['bit_identical']}   warm zero samples: {payload['warm_zero_samples']}")
    for row in payload["throughput"]:
        print(
            f"{row['clients']} client(s): {row['requests']} requests in {row['seconds']:.2f}s "
            f"= {row['requests_per_second']:.1f} req/s ({row['errors']} errors)"
        )
    record_bench("serve", payload, summary=SUMMARY)
    print(f"\nsummary written to {write_bench_summary(SUMMARY)}")


if __name__ == "__main__":
    main()
