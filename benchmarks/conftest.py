"""Shared configuration of the benchmark harness.

Every benchmark has two modes:

* the default (CI-friendly) mode uses reduced sample counts and repetition
  counts so that ``pytest benchmarks/ --benchmark-only`` completes in minutes;
* setting the environment variable ``QCORAL_BENCH_FULL=1`` switches to the
  paper-scale parameters (30 repetitions, up to 10^6 samples, full path
  counts); expect hours of run time, as in the original evaluation.

Each ``bench_*.py`` module is also directly runnable (``python
benchmarks/bench_table2_microbenchmarks.py``) and then prints the full table
in the paper's row format.
"""

from __future__ import annotations

import os

import pytest

#: True when the benchmarks should run at paper scale.
FULL_SCALE = os.environ.get("QCORAL_BENCH_FULL", "0") not in ("0", "", "false", "False")


def repetitions(default: int = 3, full: int = 30) -> int:
    """Number of repeated trials per configuration."""
    return full if FULL_SCALE else default


def sample_counts(default=(1_000, 10_000), full=(1_000, 10_000, 100_000, 1_000_000)):
    """Sampling budgets to sweep."""
    return tuple(full) if FULL_SCALE else tuple(default)


@pytest.fixture(scope="session")
def full_scale() -> bool:
    """Expose the scale switch to benchmark tests."""
    return FULL_SCALE
