"""Shared configuration of the benchmark harness.

Every benchmark has two modes:

* the default (CI-friendly) mode uses reduced sample counts and repetition
  counts so that ``pytest benchmarks/ --benchmark-only`` completes in minutes;
* setting the environment variable ``QCORAL_BENCH_FULL=1`` switches to the
  paper-scale parameters (30 repetitions, up to 10^6 samples, full path
  counts); expect hours of run time, as in the original evaluation.

Each ``bench_*.py`` module is also directly runnable (``python
benchmarks/bench_table2_microbenchmarks.py``) and then prints the full table
in the paper's row format.

Benchmarks can additionally register machine-readable summaries with
:func:`record_bench`; everything registered during a session is written to
``benchmarks/BENCH_adaptive.json`` at session end, so the performance
trajectory of the adaptive sampler is tracked across commits.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

import pytest

#: True when the benchmarks should run at paper scale.
FULL_SCALE = os.environ.get("QCORAL_BENCH_FULL", "0") not in ("0", "", "false", "False")

#: Default summary file (the adaptive-sampler trajectory, kept for history).
DEFAULT_SUMMARY = "BENCH_adaptive.json"

#: Summary payloads registered this session, grouped by summary file name.
BENCH_RESULTS: Dict[str, Dict[str, Any]] = {}

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))

#: Where the default machine-readable benchmark summary lands.
BENCH_SUMMARY_PATH = os.path.join(_BENCH_DIR, DEFAULT_SUMMARY)


def record_bench(name: str, payload: Any, summary: str = DEFAULT_SUMMARY) -> None:
    """Register one benchmark's machine-readable summary for the JSON dump.

    ``summary`` selects the output file (``BENCH_adaptive.json`` by default;
    the parallel-scaling benchmark writes ``BENCH_parallel.json``), so each
    benchmark family tracks its own trajectory across commits.
    """
    BENCH_RESULTS.setdefault(summary, {})[name] = payload


def write_bench_summary(summary: str = DEFAULT_SUMMARY) -> str:
    """Write the payloads registered under ``summary`` to its JSON file."""
    path = os.path.join(_BENCH_DIR, summary)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(BENCH_RESULTS.get(summary, {}), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def pytest_sessionfinish(session, exitstatus):
    """Emit every benchmark summary that registered results."""
    for summary in BENCH_RESULTS:
        path = write_bench_summary(summary)
        print(f"\nbenchmark summary written to {path}")


def repetitions(default: int = 3, full: int = 30) -> int:
    """Number of repeated trials per configuration."""
    return full if FULL_SCALE else default


def sample_counts(default=(1_000, 10_000), full=(1_000, 10_000, 100_000, 1_000_000)):
    """Sampling budgets to sweep."""
    return tuple(full) if FULL_SCALE else tuple(default)


@pytest.fixture(scope="session")
def full_scale() -> bool:
    """Expose the scale switch to benchmark tests."""
    return FULL_SCALE
