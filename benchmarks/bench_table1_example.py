"""Figure 2 / Table 1: ICP-stratified sampling versus plain hit-or-miss.

The paper's Section 3.3 example estimates P(x <= -y and y <= x) for x, y
uniform over [-1, 1] (exact value 1/4) with 10^4 samples, and shows that
stratifying the domain with ICP boxes reduces the estimator variance by more
than an order of magnitude.  This benchmark regenerates that comparison: the
plain estimator row, the per-box rows (weight, mean, variance), and the
combined stratified estimator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.results import Table
from repro.core.montecarlo import hit_or_miss
from repro.core.profiles import UsageProfile
from repro.core.stratified import stratified_sampling
from repro.icp.config import ICPConfig
from repro.lang.parser import parse_path_condition

EXACT_PROBABILITY = 0.25
SAMPLES = 10_000

_PC = parse_path_condition("x <= 0 - y && y <= x")
_PROFILE = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})


def run_plain(samples: int = SAMPLES, seed: int = 0):
    """Plain hit-or-miss over the whole domain (the paper's first row)."""
    return hit_or_miss(_PC, _PROFILE, samples, np.random.default_rng(seed))


def run_stratified(samples: int = SAMPLES, seed: int = 0, max_boxes: int = 4):
    """ICP-stratified sampling with the Figure 2 box budget."""
    return stratified_sampling(
        _PC,
        _PROFILE,
        samples,
        np.random.default_rng(seed),
        icp_config=ICPConfig(max_boxes=max_boxes),
    )


def generate_table() -> Table:
    """Produce the Table 1 analogue: per-box estimates plus the combined rows."""
    table = Table(
        "Table 1 — variance reduction on the Figure 2 example (exact = 0.25)",
        ("weight", "mean", "variance"),
    )
    plain = run_plain(seed=1)
    stratified = run_stratified(seed=1)
    for index, report in enumerate(stratified.strata):
        table.add_row(
            f"box b{index + 1} {'(inner)' if report.inner else ''}",
            report.weight,
            report.estimate.mean,
            report.estimate.variance,
        )
    table.add_row("hit-or-miss (whole domain)", 1.0, plain.estimate.mean, plain.estimate.variance)
    table.add_row("stratified (combined)", 1.0, stratified.estimate.mean, stratified.estimate.variance)
    return table


class TestTable1Benchmarks:
    def test_plain_hit_or_miss(self, benchmark):
        result = benchmark(lambda: run_plain(seed=2))
        assert result.estimate.mean == pytest.approx(EXACT_PROBABILITY, abs=0.03)

    def test_stratified_sampling(self, benchmark):
        result = benchmark(lambda: run_stratified(seed=2))
        assert result.estimate.mean == pytest.approx(EXACT_PROBABILITY, abs=0.03)

    def test_variance_reduction_reproduced(self):
        """The headline claim: stratified variance is no worse than plain."""
        plain = run_plain(seed=3)
        stratified = run_stratified(seed=3, max_boxes=16)
        assert stratified.estimate.variance <= plain.estimate.variance * 3.0
        assert stratified.estimate.mean == pytest.approx(EXACT_PROBABILITY, abs=0.03)


if __name__ == "__main__":
    print(generate_table().render())
