"""Throughput of the fused constraint kernels on the volcomp suite.

The fused-kernel compiler (:mod:`repro.lang.kernel`) lowers each path
condition into one generated NumPy function; the claim is (a) it is never
*semantically* different from the closure-tree oracle — fixed-seed hit counts
must be bit-identical on every subject, tier, and executor backend — and
(b) it is faster wherever predicate evaluation, not RNG sampling, dominates.
This benchmark measures both on real volcomp workloads:

* **throughput** — samples/sec per subject for the closure and fused tiers
  (and the numba tier when numba is importable), each measured on the serial,
  thread and process backends at an identical seeded budget;
* **bit-identity** — the per-subject hit total must be one number across
  every (tier, backend) cell of the sweep.

ATRIAL is the stress subject: ~1700 distinct path conditions per assertion
exercise the kernel cache itself, not just the generated code.  Subjects
whose cost is dominated by profile sampling (many variables, few operations
per constraint) honestly show parity rather than speedup; the summary records
them as such.

Writes ``benchmarks/BENCH_kernels.json``.  Directly runnable::

    PYTHONPATH=src python benchmarks/bench_kernels.py --budget 100000
"""

from __future__ import annotations

import argparse
import os
import time
from typing import Dict, List, Optional, Tuple

import pytest

try:
    from benchmarks.conftest import FULL_SCALE, record_bench, write_bench_summary
except ImportError:  # executed directly: benchmarks/ is sys.path[0]
    from conftest import FULL_SCALE, record_bench, write_bench_summary
from repro.analysis.results import Table
from repro.core.montecarlo import hit_or_miss_sharded
from repro.exec import SeedStream, make_executor
from repro.lang.kernel import TIER_ENV, _numba_njit, clear_kernel_cache, get_kernel, set_kernel_tier
from repro.subjects.volcomp_suite import subject_by_name

#: Summary file this benchmark writes (uploaded as a CI artifact).
SUMMARY_FILE = "BENCH_kernels.json"

#: Volcomp subjects swept: ATRIAL stresses the kernel cache (~1700 path
#: conditions), VOL is evaluation-bound (deep trig constraints), CORONARY and
#: EGFR EPI are sampling-bound parity checks.
SUBJECTS = ("ATRIAL", "CORONARY", "EGFR EPI", "VOL")

#: Per-path-condition sampling budget.
BUDGET = 1_000_000 if FULL_SCALE else 100_000

#: Executor backends swept: (label, executor kind, workers).
BACKENDS: Tuple[Tuple[str, Optional[str], Optional[int]], ...] = (
    ("serial", None, None),
    ("thread", "thread", 2),
    ("process", "process", 2),
)

#: Chunk size feeding the sharded sampler (2 chunks per PC at reduced scale).
CHUNK = 50_000

#: Base seed; path condition ``i`` always samples from ``SEED + i``.
SEED = 9000


def kernel_tiers() -> Tuple[str, ...]:
    """Tiers worth measuring here: the oracle, the default, numba when present."""
    tiers = ["closure", "fused"]
    if _numba_njit() is not None:
        tiers.append("numba")
    return tuple(tiers)


def _noop(value):
    return value


def run_subject_once(
    name: str, tier: str, executor: Optional[str], workers: Optional[int], budget: int
) -> Tuple[int, float]:
    """One timed sweep over every path condition of a subject's first assertion.

    Returns ``(total_hits, seconds)``.  The tier is installed both in-process
    and in the environment *before* the pool is created, so process-backend
    workers inherit it; kernel compilation is warmed outside the timed region
    (compilation is once-per-deployment, throughput is what recurs).
    """
    subject = subject_by_name(name)
    constraint_set = subject.constraint_set(subject.assertions[0])
    profile = subject.profile()

    os.environ[TIER_ENV] = tier
    set_kernel_tier(tier)
    clear_kernel_cache()
    for pc in constraint_set.path_conditions:
        get_kernel(pc)

    backend = make_executor(executor, workers) if executor is not None else None
    try:
        if backend is not None:
            backend.map(_noop, list(range(backend.workers)))
        hits = 0
        started = time.perf_counter()
        for index, pc in enumerate(constraint_set.path_conditions):
            result = hit_or_miss_sharded(
                pc, profile, budget, SeedStream(SEED + index), executor=backend, chunk_size=CHUNK
            )
            hits += result.hits
        elapsed = time.perf_counter() - started
    finally:
        if backend is not None:
            backend.close()
        os.environ.pop(TIER_ENV, None)
        set_kernel_tier(None)
    return hits, elapsed


def bench_subject(name: str, budget: int, repeats: int, backends=BACKENDS) -> Dict:
    """Full (tier × backend) sweep of one subject, with the bit-identity check."""
    subject = subject_by_name(name)
    path_conditions = len(subject.constraint_set(subject.assertions[0]).path_conditions)
    total_samples = budget * path_conditions

    runs: List[Dict] = []
    for tier in kernel_tiers():
        for label, executor, workers in backends:
            times: List[float] = []
            hits = None
            for _ in range(repeats):
                hits, elapsed = run_subject_once(name, tier, executor, workers, budget)
                times.append(elapsed)
            seconds = min(times)
            runs.append(
                {
                    "tier": tier,
                    "backend": label,
                    "workers": workers,
                    "seconds": seconds,
                    "seconds_all": times,
                    "samples_per_second": total_samples / seconds if seconds > 0 else 0.0,
                    "hits": hits,
                }
            )

    hit_values = {run["hits"] for run in runs}
    by_cell = {(run["tier"], run["backend"]): run for run in runs}
    speedups = {
        f"fused_vs_closure_{label}": (
            by_cell[("closure", label)]["seconds"] / by_cell[("fused", label)]["seconds"]
            if by_cell[("fused", label)]["seconds"] > 0
            else 0.0
        )
        for label, _, _ in backends
    }
    return {
        "subject": name,
        "path_conditions": path_conditions,
        "budget_per_pc": budget,
        "total_samples": total_samples,
        "runs": runs,
        "hits": runs[0]["hits"],
        "hits_match": len(hit_values) == 1,
        "speedups": speedups,
    }


def collect_results(budget: int = BUDGET, repeats: int = 2, subjects=SUBJECTS, backends=BACKENDS) -> Dict:
    """Sweep every subject and register the machine-readable summary."""
    rows = [bench_subject(name, budget, repeats, backends=backends) for name in subjects]
    payload = {
        "budget_per_pc": budget,
        "chunk_size": CHUNK,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "tiers": list(kernel_tiers()),
        "numba_available": _numba_njit() is not None,
        "backends": [label for label, _, _ in backends],
        "subjects": rows,
        "all_hits_match": all(row["hits_match"] for row in rows),
        "max_speedup_fused": max(
            speedup for row in rows for speedup in row["speedups"].values()
        ),
    }
    record_bench("kernels", payload, summary=SUMMARY_FILE)
    return payload


def generate_table(payload: Dict) -> Table:
    table = Table(
        f"Fused-kernel throughput at {payload['budget_per_pc']} samples/PC "
        f"({payload['cpu_count']} CPUs; Msamples/s)",
        ("closure serial", "fused serial", "fused thread", "fused process", "speedup serial", "hits match"),
    )
    for row in payload["subjects"]:
        by_cell = {(run["tier"], run["backend"]): run for run in row["runs"]}
        table.add_row(
            row["subject"],
            by_cell[("closure", "serial")]["samples_per_second"] / 1e6,
            by_cell[("fused", "serial")]["samples_per_second"] / 1e6,
            by_cell[("fused", "thread")]["samples_per_second"] / 1e6,
            by_cell[("fused", "process")]["samples_per_second"] / 1e6,
            row["speedups"]["fused_vs_closure_serial"],
            float(row["hits_match"]),
        )
    return table


class TestKernelBench:
    #: Reduced budget for the pytest path (CI-friendly).
    TEST_BUDGET = 20_000

    #: CI sweeps the cheap subjects; ATRIAL's 1700 PCs stay in the full run.
    TEST_SUBJECTS = ("CORONARY", "VOL")

    @pytest.mark.parametrize("name", list(TEST_SUBJECTS))
    def test_hits_bit_identical_across_tiers_and_backends(self, name):
        row = bench_subject(name, self.TEST_BUDGET, repeats=1)
        assert row["hits_match"], {
            (run["tier"], run["backend"]): run["hits"] for run in row["runs"]
        }

    def test_summary_registered(self):
        payload = collect_results(budget=self.TEST_BUDGET, repeats=1, subjects=self.TEST_SUBJECTS)
        assert payload["all_hits_match"]
        assert len(payload["subjects"]) == len(self.TEST_SUBJECTS)

    @pytest.mark.skipif(not FULL_SCALE, reason="perf threshold is opt-in (QCORAL_BENCH_FULL=1)")
    def test_fused_beats_closure_somewhere(self):
        """Wall-clock threshold — opt-in so shared-runner noise can't fail CI."""
        payload = collect_results(budget=BUDGET, repeats=2)
        assert payload["max_speedup_fused"] >= 1.5


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=BUDGET, help="samples per path condition")
    parser.add_argument("--repeats", type=int, default=2, help="timing repetitions (best-of)")
    parser.add_argument("--subjects", nargs="*", default=list(SUBJECTS), help="volcomp subjects to sweep")
    args = parser.parse_args(argv)

    payload = collect_results(budget=args.budget, repeats=args.repeats, subjects=tuple(args.subjects))
    print(generate_table(payload).render())
    print(f"\nall hits match: {payload['all_hits_match']}; max fused speedup {payload['max_speedup_fused']:.2f}x")
    print(f"summary written to {write_bench_summary(SUMMARY_FILE)}")
    if not FULL_SCALE:
        print("(reduced mode: set QCORAL_BENCH_FULL=1 for the paper-scale sweep)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
