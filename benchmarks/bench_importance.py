"""Importance sampling vs hit-or-miss at equal budget on peaked profiles.

The distribution-aware importance engine (``method="importance"``) refines the
ICP paving by mass, allocates budget by ``mass · σ̂``, and combines the strata
self-normalised.  This benchmark runs it against the paper's hit-or-miss
stratified sampling with the *same seed and the same total sample count* on
the peaked-profile subjects of :mod:`repro.subjects.discrete` and reports the
ratio of the combined standard deviations — plus, where the subject is fully
discrete, the true error against the enumerated ground-truth probability.

Expected outcome: σ ratio strictly below 1 on every subject (the all-discrete
subjects are resolved to per-atom strata, so their ratio collapses to ~0), and
bit-identical same-seed results across the serial, thread, and process
executors at any worker count.

The machine-readable summary lands in ``benchmarks/BENCH_importance.json``;
``benchmarks/check_regression.py`` gates CI on it.
"""

from __future__ import annotations

import statistics

import pytest

try:
    from benchmarks.conftest import FULL_SCALE, record_bench, repetitions, write_bench_summary
except ImportError:  # executed directly: benchmarks/ is sys.path[0]
    from conftest import FULL_SCALE, record_bench, repetitions, write_bench_summary
from repro.analysis.results import Table
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig
from repro.subjects.discrete import all_discrete_subjects, discrete_subject_by_name

#: Summary file of this benchmark family.
SUMMARY = "BENCH_importance.json"

#: Subjects where the paving leaves genuinely sampled strata, so the σ ratio
#: is a meaningful (non-degenerate) comparison — the acceptance pair.
PEAKED_SAMPLED = ("LoadSpike", "BurstySensor")

#: Per-factor budget of the comparison (paper scale when QCORAL_BENCH_FULL=1).
BUDGET = 100_000 if FULL_SCALE else 10_000


def run_pair(name: str, samples: int, seed: int) -> dict:
    """One seed-matched hit-or-miss vs importance comparison on one subject."""
    subject = discrete_subject_by_name(name)
    base_config = QCoralConfig.strat_partcache(samples, seed=seed)
    imp_config = QCoralConfig.importance(samples, seed=seed)

    base = QCoralAnalyzer(subject.profile, base_config).analyze(subject.constraint_set())
    imp = QCoralAnalyzer(subject.profile, imp_config).analyze(subject.constraint_set())

    exact = subject.exact_probability()
    return {
        "subject": name,
        "seed": seed,
        "samples_base": base.total_samples,
        "samples_importance": imp.total_samples,
        "mean_base": base.mean,
        "mean_importance": imp.mean,
        "sigma_base": base.std,
        "sigma_importance": imp.std,
        "sigma_ratio": imp.std / base.std if base.std > 0 else 1.0,
        "error_base": abs(base.mean - exact) if exact is not None else None,
        "error_importance": abs(imp.mean - exact) if exact is not None else None,
    }


def determinism_check(samples: int = 8_000, seed: int = 5) -> dict:
    """Same-seed importance runs across all executor backends must be bit-identical."""
    subject = discrete_subject_by_name("BurstySensor")
    outcomes = {}
    for executor, workers in (("serial", None), ("thread", 3), ("process", 2)):
        config = QCoralConfig.importance(samples, seed=seed).with_executor(executor, workers)
        with QCoralAnalyzer(subject.profile, config) as analyzer:
            result = analyzer.analyze(subject.constraint_set())
        outcomes[f"{executor}" + (f"x{workers}" if workers else "")] = {
            "mean": result.mean,
            "variance": result.variance,
            "samples": result.total_samples,
        }
    values = {(o["mean"], o["variance"], o["samples"]) for o in outcomes.values()}
    return {
        "subject": "BurstySensor",
        "samples": samples,
        "seed": seed,
        "backends": outcomes,
        "bit_identical": len(values) == 1,
    }


def collect_results(samples: int = BUDGET, runs: int | None = None, base_seed: int = 300) -> list:
    """Seed-matched comparisons for every subject, registered for the JSON dump."""
    trials = runs if runs is not None else repetitions()
    rows = []
    for subject in all_discrete_subjects():
        pairs = [run_pair(subject.name, samples, base_seed + index) for index in range(trials)]
        rows.append(
            {
                "subject": subject.name,
                "group": subject.group,
                "samples": samples,
                "runs": trials,
                "sigma_base": statistics.fmean(pair["sigma_base"] for pair in pairs),
                "sigma_importance": statistics.fmean(pair["sigma_importance"] for pair in pairs),
                "sigma_ratio": statistics.fmean(pair["sigma_ratio"] for pair in pairs),
                "mean_gap": statistics.fmean(
                    abs(pair["mean_importance"] - pair["mean_base"]) for pair in pairs
                ),
                "pairs": pairs,
            }
        )
    record_bench(
        "importance",
        {
            "budget": samples,
            "subjects": [
                {key: value for key, value in row.items() if key != "pairs"} for row in rows
            ],
            "determinism": determinism_check(),
        },
        summary=SUMMARY,
    )
    return rows


def generate_table() -> Table:
    table = Table(
        f"Importance vs hit-or-miss at {BUDGET} samples (seed-matched)",
        ("σ hit-or-miss", "σ importance", "σ ratio", "mean gap"),
    )
    for row in collect_results():
        table.add_row(
            row["subject"],
            row["sigma_base"],
            row["sigma_importance"],
            row["sigma_ratio"],
            row["mean_gap"],
        )
    return table


class TestImportanceBenchmark:
    @pytest.mark.parametrize("name", PEAKED_SAMPLED)
    def test_importance_beats_hit_or_miss_at_equal_budget(self, name):
        """Same seed, same sample count, strictly lower combined σ."""
        pair = run_pair(name, 10_000, seed=7)
        assert pair["samples_importance"] == pair["samples_base"]
        assert pair["sigma_importance"] < pair["sigma_base"]
        assert pair["mean_importance"] == pytest.approx(pair["mean_base"], abs=0.02)

    def test_discrete_subjects_resolve_near_ground_truth(self):
        """All-discrete subjects collapse to (near) per-atom strata.

        At the default 64-box cap a handful of strata still hold two atoms,
        one of which can carry near-zero tail mass the samples never see, so
        the residual error is bounded by that tail mass rather than exactly 0
        (the 256-box unit test in tests/test_importance.py checks exactness).
        """
        pair = run_pair("SensorGrid", 5_000, seed=9)
        assert pair["error_importance"] == pytest.approx(0.0, abs=1e-5)
        assert pair["error_importance"] < pair["error_base"]

    def test_bit_identical_across_executors(self):
        assert determinism_check(samples=4_000)["bit_identical"]

    def test_summary_registered(self):
        rows = collect_results(samples=4_000, runs=2)
        assert len(rows) == len(all_discrete_subjects())
        assert all(row["sigma_ratio"] < 1.0 for row in rows)


def main() -> None:
    print(generate_table().render())
    path = write_bench_summary(SUMMARY)
    print(f"\nbenchmark summary written to {path}")
    if not FULL_SCALE:
        print("(reduced mode: set QCORAL_BENCH_FULL=1 for the paper-scale sweep)")


if __name__ == "__main__":
    main()
