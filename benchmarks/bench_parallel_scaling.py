"""Parallel scaling of the sampling stack on the Table 2 microbenchmarks.

The estimator is embarrassingly parallel: hit-or-miss chunks over disjoint
strata are independent and merge exactly (``SamplingResult.merge`` /
``RunningEstimate``), so the executor subsystem should convert worker count
into wall-clock speedup while leaving the *estimate itself untouched*.  This
benchmark measures both halves of that claim on the paper's Table 2 workload:

* **scaling** — serial wall-clock vs the process backend at 1/2/4 workers
  (and the thread backend for reference) at an identical sampling budget;
* **determinism** — the estimate and variance at a fixed master seed must be
  bit-identical across every backend and worker count measured.

Speedup is hardware-bound: on a single-core machine the process backend can
only add overhead, so the JSON summary records ``cpu_count`` alongside the
timings and the speedup assertions are gated on having the cores to scale to.

Writes ``benchmarks/BENCH_parallel.json``.  Directly runnable::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --executor process --workers 2
"""

from __future__ import annotations

import argparse
import os
import statistics
import time
from typing import Dict, List, Optional

import pytest

try:
    from benchmarks.conftest import FULL_SCALE, record_bench, write_bench_summary
except ImportError:  # executed directly: benchmarks/ is sys.path[0]
    from conftest import FULL_SCALE, record_bench, write_bench_summary
from repro.analysis.results import Table
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig
from repro.exec import make_executor
from repro.subjects.solids import solid_by_name

#: Summary file this benchmark writes (uploaded as a CI artifact).
SUMMARY_FILE = "BENCH_parallel.json"

#: Table-2 subjects whose pavings leave real sampling work (Cube is exact).
SUBJECTS = ("Sphere", "Torus", "Icosahedron")

#: Per-factor sampling budget: large enough that per-chunk compute dominates
#: pool dispatch overhead (paper scale when QCORAL_BENCH_FULL=1).
BUDGET = 2_000_000 if FULL_SCALE else 400_000

#: Worker counts swept for the process backend.
WORKER_COUNTS = (1, 2, 4)

#: Fixed master seed of the determinism cross-check.
SEED = 77

#: Chunk size: BUDGET/chunk tasks per round, enough to feed 4 workers while
#: keeping per-task compute well above pool dispatch overhead.
CHUNK = 50_000


def _noop(value):
    return value


def run_once(name: str, executor: Optional[str], workers: Optional[int], budget: int = BUDGET, seed: int = SEED):
    """One timed analysis of one solid on one backend; returns (result, seconds).

    The worker pool is created and warmed *outside* the timed region: pool
    start-up is a once-per-deployment cost, while the benchmark measures the
    steady-state throughput a long-lived analyzer would see.
    """
    solid = solid_by_name(name)
    config = QCoralConfig(samples_per_query=budget, seed=seed, executor=executor, workers=workers, chunk_size=CHUNK)
    backend = make_executor(executor, workers) if executor is not None else None
    try:
        if backend is not None:
            backend.map(_noop, list(range(backend.workers)))
        with QCoralAnalyzer(solid.profile(), config, executor=backend) as analyzer:
            started = time.perf_counter()
            result = analyzer.analyze(solid.constraint_set())
            elapsed = time.perf_counter() - started
    finally:
        if backend is not None:
            backend.close()
    return result, elapsed


def _best_of(name: str, executor: Optional[str], workers: Optional[int], budget: int, repeats: int) -> Dict:
    """Best-of-N timing (min wall-clock) plus the (identical) estimates."""
    times: List[float] = []
    result = None
    for _ in range(repeats):
        result, elapsed = run_once(name, executor, workers, budget=budget)
        times.append(elapsed)
    return {
        "executor": executor or "legacy",
        "workers": workers,
        "seconds": min(times),
        "seconds_all": times,
        "mean": result.mean,
        "variance": result.variance,
        "samples": result.total_samples,
    }


def collect_results(budget: int = BUDGET, repeats: int = 2) -> Dict:
    """Scaling sweep + determinism cross-check, registered for the JSON dump."""
    subjects = []
    for name in SUBJECTS:
        serial = _best_of(name, "serial", None, budget, repeats)
        runs = [serial]
        for workers in WORKER_COUNTS:
            runs.append(_best_of(name, "process", workers, budget, repeats))
        runs.append(_best_of(name, "thread", 4, budget, repeats))

        reference = (serial["mean"], serial["variance"], serial["samples"])
        deterministic = all((run["mean"], run["variance"], run["samples"]) == reference for run in runs)
        speedups = {
            f"process_x{run['workers']}": serial["seconds"] / run["seconds"]
            for run in runs
            if run["executor"] == "process" and run["seconds"] > 0
        }
        subjects.append(
            {
                "subject": name,
                "budget": budget,
                "runs": runs,
                "speedups": speedups,
                "deterministic": deterministic,
            }
        )

    payload = {
        "budget": budget,
        "chunk_size": CHUNK,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "worker_counts": list(WORKER_COUNTS),
        "subjects": subjects,
        "all_deterministic": all(row["deterministic"] for row in subjects),
        "speedup_process_x4": statistics.fmean(
            row["speedups"].get("process_x4", 0.0) for row in subjects
        ),
    }
    record_bench("parallel_scaling", payload, summary=SUMMARY_FILE)
    return payload


def generate_table(payload: Dict) -> Table:
    table = Table(
        f"Parallel scaling at {payload['budget']} samples ({payload['cpu_count']} CPUs)",
        ("serial s", "proc×1 s", "proc×2 s", "proc×4 s", "speedup×4", "deterministic"),
    )
    for row in payload["subjects"]:
        by_key = {(run["executor"], run["workers"]): run for run in row["runs"]}
        table.add_row(
            row["subject"],
            by_key[("serial", None)]["seconds"],
            by_key[("process", 1)]["seconds"],
            by_key[("process", 2)]["seconds"],
            by_key[("process", 4)]["seconds"],
            row["speedups"].get("process_x4", float("nan")),
            float(row["deterministic"]),
        )
    return table


class TestParallelScaling:
    #: Reduced budget for the pytest path (CI-friendly).
    TEST_BUDGET = 50_000

    @pytest.mark.parametrize("name", ["Sphere", "Torus"])
    def test_backends_bit_identical_on_table2_workload(self, name):
        serial, _ = run_once(name, "serial", None, budget=self.TEST_BUDGET)
        for executor, workers in (("thread", 2), ("process", 2), ("process", 4)):
            parallel, _ = run_once(name, executor, workers, budget=self.TEST_BUDGET)
            assert parallel.mean == serial.mean
            assert parallel.variance == serial.variance
            assert parallel.total_samples == serial.total_samples

    def test_summary_registered(self):
        payload = collect_results(budget=self.TEST_BUDGET, repeats=1)
        assert payload["all_deterministic"]
        assert len(payload["subjects"]) == len(SUBJECTS)

    @pytest.mark.skipif(
        not FULL_SCALE or (os.cpu_count() or 1) < 4,
        reason="perf threshold is opt-in (QCORAL_BENCH_FULL=1) and needs >= 4 cores",
    )
    def test_process_speedup_at_four_workers(self):
        """Wall-clock threshold — opt-in so shared-runner noise can't fail CI."""
        payload = collect_results(budget=BUDGET, repeats=2)
        assert payload["speedup_process_x4"] >= 1.8


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=BUDGET, help="samples per subject")
    parser.add_argument("--repeats", type=int, default=2, help="timing repetitions (best-of)")
    parser.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        default=None,
        help="additionally time one specific backend/worker pairing",
    )
    parser.add_argument("--workers", type=int, default=None, help="workers for --executor")
    args = parser.parse_args(argv)

    payload = collect_results(budget=args.budget, repeats=args.repeats)
    print(generate_table(payload).render())
    if args.executor is not None:
        extra, elapsed = run_once(SUBJECTS[0], args.executor, args.workers, budget=args.budget)
        label = args.executor if args.workers is None else f"{args.executor}×{args.workers}"
        print(f"\nrequested backend {label} on {SUBJECTS[0]}: {elapsed:.2f}s ({extra!r})")
    print(f"\nsummary written to {write_bench_summary(SUMMARY_FILE)}")
    if not FULL_SCALE:
        print("(reduced mode: set QCORAL_BENCH_FULL=1 for the paper-scale sweep)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
