"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's tables and quantify:

* the effect of the ICP box budget on the stratified estimator's variance
  (the paper fixes 10 boxes per query after "empirical experience");
* the accuracy/time trade-off of the factor cache discussed in Section 5;
* the cost of the variance upper bound of Theorem 1 relative to the empirical
  variance of repeated runs.
"""

from __future__ import annotations

import numpy as np
import pytest

try:
    from benchmarks.conftest import repetitions
except ImportError:  # executed directly: benchmarks/ is sys.path[0]
    from conftest import repetitions
from repro.analysis.results import Table
from repro.core.profiles import UsageProfile
from repro.core.qcoral import QCoralConfig, quantify
from repro.core.stratified import stratified_sampling
from repro.icp.config import ICPConfig
from repro.lang.parser import parse_constraint_set, parse_path_condition

_PROFILE = UsageProfile.uniform({"x": (-5, 5), "y": (-5, 5)})
_CIRCLE = parse_path_condition("x * x + y * y <= 1")

#: Disjunction whose paths share the same non-linear factor over {x, y} while
#: differing only in an independent threshold on z — the situation PARTCACHE
#: exploits (the sin factor is estimated once and reused for every path).
_SHARED_FACTORS = parse_constraint_set(
    " || ".join(
        f"sin(x * y) > 0.25 && z > {low} && z <= {high}"
        for low, high in ((-3, -1), (-1, 1), (1, 2))
    )
)
_SHARED_PROFILE = UsageProfile.uniform({"x": (-3, 3), "y": (-3, 3), "z": (-3, 3)})


def run_box_budget(max_boxes: int, samples: int = 5_000, seed: int = 0):
    return stratified_sampling(
        _CIRCLE,
        _PROFILE,
        samples,
        np.random.default_rng(seed),
        icp_config=ICPConfig(max_boxes=max_boxes),
    )


def generate_box_budget_table() -> Table:
    table = Table(
        "Ablation — ICP box budget vs stratified variance (circle in [-5,5]^2)",
        ("boxes", "estimate", "variance"),
    )
    for max_boxes in (1, 2, 5, 10, 20, 50):
        result = run_box_budget(max_boxes, seed=3)
        table.add_row(f"max_boxes={max_boxes}", result.box_count, result.estimate.mean, result.estimate.variance)
    return table


def generate_cache_table() -> Table:
    table = Table(
        "Ablation — factor cache accuracy/time trade-off (shared sin factor)",
        ("estimate", "σ", "samples", "time (s)"),
    )
    for label, config in (
        ("STRAT (no cache)", QCoralConfig.strat(4_000, seed=5)),
        ("STRAT+PARTCACHE", QCoralConfig.strat_partcache(4_000, seed=5)),
    ):
        result = quantify(_SHARED_FACTORS, _SHARED_PROFILE, config)
        table.add_row(label, result.mean, result.std, result.total_samples, result.analysis_time)
    return table


class TestAblationBenchmarks:
    @pytest.mark.parametrize("max_boxes", [1, 10, 50])
    def test_box_budget_sweep(self, benchmark, max_boxes):
        result = benchmark(lambda: run_box_budget(max_boxes, samples=2_000, seed=1))
        assert result.estimate.mean == pytest.approx(np.pi / 100.0, abs=0.01)

    def test_more_boxes_never_hurt_much(self):
        few = run_box_budget(2, seed=7)
        many = run_box_budget(50, seed=7)
        assert many.estimate.variance <= few.estimate.variance * 1.5

    def test_cache_preserves_estimate(self):
        uncached = quantify(_SHARED_FACTORS, _SHARED_PROFILE, QCoralConfig.strat(3_000, seed=9))
        cached = quantify(_SHARED_FACTORS, _SHARED_PROFILE, QCoralConfig.strat_partcache(3_000, seed=9))
        assert cached.mean == pytest.approx(uncached.mean, abs=0.05)
        assert cached.total_samples <= uncached.total_samples

    def test_reported_variance_bounds_empirical_variance(self):
        """Theorem 1 sanity check over repeated runs."""
        estimates = []
        reported = []
        for seed in range(repetitions(default=5, full=30)):
            result = quantify(_SHARED_FACTORS, _SHARED_PROFILE, QCoralConfig.strat_partcache(2_000, seed=seed))
            estimates.append(result.mean)
            reported.append(result.variance)
        empirical = float(np.var(estimates, ddof=1))
        assert empirical <= 20 * max(reported) + 1e-6


if __name__ == "__main__":
    print(generate_box_budget_table().render())
    print()
    print(generate_cache_table().render())
