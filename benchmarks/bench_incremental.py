"""Incremental re-quantification vs cold re-runs across edit sizes.

The scenario ``qcoral ci`` is built for: a program evolves one factor at a
time, and re-quantifying the whole constraint set from scratch wastes the
budget on everything the edit left untouched.  This benchmark sweeps the
edit size over the two-version evolution fixture — 0 factors changed (a
no-op commit), 1 (the canonical v1→v2 edit), 2, and all 5 — and for each
size runs the candidate twice at the same seed and per-factor budget:

* **cold** — no store: every factor pays its full sampling cost;
* **incremental** — against a store warmed by one baseline (v1) run, with
  the baseline diff attached: unchanged factors reuse stored evidence
  outright, the residual budget concentrates on the edit.

Each row records samples drawn, wall-clock, and the reuse fraction; the
all-changed row doubles as the bit-identity contract check (a diff that
finds everything changed must reproduce the cold run *exactly* — equal
mean, std, and sample count, not statistical agreement).  The summary lands
in ``benchmarks/BENCH_incremental.json`` and is gated by
``benchmarks/check_regression.py``.

Run directly (``python benchmarks/bench_incremental.py``) for the table, or
via pytest for the assertion-checked version.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

try:
    from benchmarks.conftest import FULL_SCALE, record_bench, write_bench_summary
except ImportError:  # executed directly: benchmarks/ is sys.path[0]
    from conftest import FULL_SCALE, record_bench, write_bench_summary
from repro.analysis.results import Table
from repro.api import Session
from repro.core.qcoral import QCoralConfig
from repro.lang.parser import parse_constraint_set
from repro.subjects import evolution

#: Summary file of this benchmark family.
SUMMARY = "BENCH_incremental.json"

#: Per-factor budget (paper scale when QCORAL_BENCH_FULL=1).
BUDGET = 50_000 if FULL_SCALE else 5_000

#: Factors changed by each swept edit (5 = everything, the bit-identity row).
EDIT_SIZES = (0, 1, 2, 5)

SEED = 23

PROFILE = evolution.evolution_profile()


def _config() -> QCoralConfig:
    return QCoralConfig(samples_per_query=BUDGET, seed=SEED)


def _run(candidate: str, store_path, baseline: str | None) -> dict:
    """One quantification of ``candidate``; incremental when given a baseline."""
    started = time.perf_counter()
    with Session(store=store_path) as session:
        query = session.quantify(parse_constraint_set(candidate), PROFILE, config=_config())
        if baseline is not None:
            query = query.against_baseline(parse_constraint_set(baseline))
        report = query.run()
    elapsed = time.perf_counter() - started
    row = {
        "mean": report.mean,
        "std": report.std,
        "samples": report.total_samples,
        "time": elapsed,
    }
    for diagnostic in report.diagnostics:
        if diagnostic.code == "REUSE_SUMMARY":
            evidence = dict(diagnostic.evidence)
            row["factors"] = evidence["factors_total"]
            row["reused"] = evidence["factors_reused"]
            row["reuse_fraction"] = (
                evidence["factors_reused"] / evidence["factors_total"]
                if evidence["factors_total"]
                else 0.0
            )
            row["samples_saved"] = evidence["samples_saved"]
    return row


def collect_results() -> dict:
    """The edit-size sweep, registered for the JSON dump."""
    workdir = tempfile.mkdtemp(prefix="bench_incremental_")
    baseline_store = os.path.join(workdir, "baseline.jsonl")
    try:
        # Warm the store with one cold baseline (v1) run.
        baseline = _run(evolution.EVOLUTION_V1, baseline_store, None)
        edits = []
        for size in EDIT_SIZES:
            candidate = evolution.edited_version(size)
            # Each edit size gets its own copy of the v1-warmed store, so one
            # sweep row's published estimates never warm the next row.
            edit_store = os.path.join(workdir, f"edit{size}.jsonl")
            shutil.copy(baseline_store, edit_store)
            cold = _run(candidate, None, None)
            incremental = _run(candidate, edit_store, evolution.EVOLUTION_V1)
            edits.append(
                {
                    "edits": size,
                    "cold": cold,
                    "incremental": incremental,
                    "sample_ratio": (
                        incremental["samples"] / cold["samples"] if cold["samples"] else 0.0
                    ),
                    "wall_clock_saved": cold["time"] - incremental["time"],
                }
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    all_changed = next(row for row in edits if row["edits"] == max(EDIT_SIZES))
    one_edit = next(row for row in edits if row["edits"] == 1)
    payload = {
        "budget": BUDGET,
        "seed": SEED,
        "baseline": baseline,
        "edits": edits,
        "one_edit_sample_ratio": one_edit["sample_ratio"],
        "bit_identical_all_changed": (
            all_changed["incremental"]["mean"] == all_changed["cold"]["mean"]
            and all_changed["incremental"]["std"] == all_changed["cold"]["std"]
            and all_changed["incremental"]["samples"] == all_changed["cold"]["samples"]
        ),
    }
    record_bench("incremental", payload, summary=SUMMARY)
    return payload


def generate_table() -> Table:
    payload = collect_results()
    table = Table(
        f"Incremental re-quantification at {BUDGET} samples/factor (evolution fixture)",
        ("edits", "cold samples", "incr samples", "ratio", "reused", "cold time", "incr time"),
    )
    for row in payload["edits"]:
        cold, incremental = row["cold"], row["incremental"]
        table.add_row(
            f"edit{row['edits']}",
            row["edits"],
            cold["samples"],
            incremental["samples"],
            f"{row['sample_ratio']:.2f}",
            f"{incremental.get('reused', 0)}/{incremental.get('factors', 0)}",
            f"{cold['time']:.3f}s",
            f"{incremental['time']:.3f}s",
        )
    return table


def test_incremental_vs_cold():
    payload = collect_results()
    rows = {row["edits"]: row for row in payload["edits"]}

    # A no-op commit draws nothing: every factor is served from the store.
    assert rows[0]["incremental"]["samples"] == 0
    assert rows[0]["incremental"]["reuse_fraction"] == 1.0

    # Acceptance criterion: a one-factor edit draws at most a quarter of the
    # cold run's samples at the same per-factor budget.
    assert payload["one_edit_sample_ratio"] <= 0.25
    assert rows[1]["incremental"]["reused"] == 4

    # Savings shrink monotonically as the edit grows.
    assert rows[1]["incremental"]["samples"] <= rows[2]["incremental"]["samples"]
    assert rows[2]["incremental"]["samples"] <= rows[5]["incremental"]["samples"]

    # The all-changed diff reuses nothing and reproduces the cold run
    # bit-for-bit at the shared seed.
    assert rows[5]["incremental"]["reused"] == 0
    assert payload["bit_identical_all_changed"] is True


def main() -> None:
    print(generate_table().render())
    path = write_bench_summary(SUMMARY)
    print(f"\nbenchmark summary written to {path}")


if __name__ == "__main__":
    main()
