"""Gate CI on the committed benchmark baselines.

Compares the freshly produced ``benchmarks/BENCH_*.json`` files in the working
tree against the versions committed at ``HEAD`` (the baselines) and fails when
a tracked quality metric regressed by more than the tolerance:

* **σ ratios** (``BENCH_adaptive.json`` / ``BENCH_importance.json``) — lower
  is better; a fresh ratio above ``baseline × 1.2 + 0.05`` fails.  The small
  absolute slack keeps near-zero baselines (subjects the importance engine
  resolves exactly) from turning float noise into a gate failure.
* **warm reuse fractions** (``BENCH_store.json``) — higher is better; a fresh
  fraction below ``baseline × 0.8`` fails.
* **incremental reuse** (``BENCH_incremental.json``) — per edit size the
  reuse fraction gates like the store family and the incremental/cold sample
  ratio must not grow past ``baseline × 1.2 + 0.02``; two hard checks ride
  along — the all-changed run must stay bit-identical to its cold twin, and
  the one-factor edit must draw at most 25% of the cold run's samples.
* **fused-kernel summaries** (``BENCH_kernels.json``) — per-subject hit counts
  must be bit-identical across every kernel tier and executor backend
  (unconditional, no tolerance); fused-vs-closure speedups gate against the
  baseline with a loose floor since CI timing is noisy.
* **serving** (``BENCH_serve.json``) — served results must stay bit-identical
  to in-process runs and repeated requests must draw zero samples (both
  unconditional); the warm/cold latency ratio gates against a fixed 0.75
  ceiling.

Families whose fresh file was not produced this run, or whose baseline does
not exist at ``HEAD`` yet (a newly introduced family), are skipped with a
notice — a partial benchmark run must not fail the gate spuriously.

Escape hatch: set ``QCORAL_BENCH_ALLOW_REGRESSION=1`` to report regressions
without failing (use when a regression is understood and the baselines are
being re-recorded in the same change).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import dataclass
from typing import List, Optional

#: Relative regression tolerance on σ ratios (lower is better).
SIGMA_RATIO_TOLERANCE = 0.20

#: Absolute slack added on top, so exactly-resolved subjects (ratio ≈ 0)
#: cannot fail on float noise.
SIGMA_RATIO_SLACK = 0.05

#: Relative regression tolerance on reuse fractions (higher is better).
REUSE_FRACTION_TOLERANCE = 0.20

#: Relative tolerance on incremental/cold sample ratios (lower is better),
#: plus a small absolute slack so a 0.0 baseline (the no-op edit) cannot turn
#: float noise into a failure.
SAMPLE_RATIO_TOLERANCE = 0.20
SAMPLE_RATIO_SLACK = 0.02

#: Hard ceiling on the one-factor-edit sample ratio — the acceptance
#: criterion of the incremental engine, gated absolutely like the
#: observability overhead, independent of the committed trajectory.
ONE_EDIT_SAMPLE_RATIO_CEILING = 0.25

#: Relative regression tolerance on fused-kernel speedups (higher is better).
#: Deliberately loose: shared-runner timing noise is large, and the hard
#: bit-identity check below does not depend on timing at all.
KERNEL_SPEEDUP_TOLERANCE = 0.50

#: Hard ceiling on the enabled-mode observability overhead ratio
#: (``BENCH_observability.json``): instrumentation costing more than 5% of
#: the disabled run's wall-clock fails the gate.
OBSERVABILITY_OVERHEAD_CEILING = 1.05

#: Hard ceiling on the served warm/cold latency ratio
#: (``BENCH_serve.json``): a repeated request answered from the store must
#: cost well under a cold sampling run, or the service's economics are gone.
SERVE_WARM_RATIO_CEILING = 0.75

#: Environment variable that downgrades failures to warnings.
OVERRIDE_ENV = "QCORAL_BENCH_ALLOW_REGRESSION"

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
_REPO_DIR = os.path.dirname(_BENCH_DIR)


@dataclass
class Finding:
    """One metric comparison: where it came from and whether it regressed."""

    family: str
    metric: str
    baseline: float
    fresh: float
    regressed: bool

    def render(self) -> str:
        status = "REGRESSED" if self.regressed else "ok"
        return (f"[{status:>9}] {self.family}: {self.metric} " f"baseline={self.baseline:.6f} fresh={self.fresh:.6f}")


def load_fresh(name: str) -> Optional[dict]:
    """The working-tree benchmark summary, or None when this run skipped it."""
    path = os.path.join(_BENCH_DIR, name)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def load_baseline(name: str) -> Optional[dict]:
    """The summary committed at HEAD, or None for a brand-new family."""
    try:
        blob = subprocess.run(
            ["git", "show", f"HEAD:benchmarks/{name}"],
            cwd=_REPO_DIR,
            capture_output=True,
            check=True,
            text=True,
        ).stdout
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    try:
        return json.loads(blob)
    except json.JSONDecodeError:
        return None


def compare_sigma_ratios(family: str, baseline: dict, fresh: dict, key: str) -> List[Finding]:
    """Per-subject σ-ratio comparison of one ``{key: {subjects: [...]}}`` summary."""
    findings: List[Finding] = []
    base_rows = {row["subject"]: row for row in baseline.get(key, {}).get("subjects", [])}
    fresh_rows = {row["subject"]: row for row in fresh.get(key, {}).get("subjects", [])}
    for subject, base_row in base_rows.items():
        fresh_row = fresh_rows.get(subject)
        if fresh_row is None:
            continue
        base_ratio = float(base_row["sigma_ratio"])
        fresh_ratio = float(fresh_row["sigma_ratio"])
        ceiling = base_ratio * (1.0 + SIGMA_RATIO_TOLERANCE) + SIGMA_RATIO_SLACK
        findings.append(Finding(family, f"{subject} sigma_ratio", base_ratio, fresh_ratio, fresh_ratio > ceiling))
    return findings


def compare_reuse_fractions(family: str, baseline: dict, fresh: dict) -> List[Finding]:
    """Warm-phase reuse-fraction comparison of the store summary."""
    findings: List[Finding] = []
    for key, base_payload in baseline.items():
        fresh_payload = fresh.get(key)
        if not isinstance(base_payload, dict) or fresh_payload is None:
            continue
        base_warm = base_payload.get("warm", {}).get("reuse_fraction")
        fresh_warm = fresh_payload.get("warm", {}).get("reuse_fraction")
        if base_warm is None or fresh_warm is None:
            continue
        floor = float(base_warm) * (1.0 - REUSE_FRACTION_TOLERANCE)
        findings.append(
            Finding(
                family,
                f"{key} warm reuse_fraction",
                float(base_warm),
                float(fresh_warm),
                float(fresh_warm) < floor,
            )
        )
    return findings


def compare_incremental(family: str, baseline: dict, fresh: dict) -> List[Finding]:
    """Incremental summary: reuse/ratio gate softly, two contracts gate hard.

    ``bit_identical_all_changed`` and the one-edit sample-ratio ceiling are
    properties of the fresh run alone (no tolerance, no baseline needed);
    per-edit reuse fractions and sample ratios gate against the committed
    trajectory with the usual slack.
    """
    findings: List[Finding] = []
    payload = fresh.get("incremental", {})
    if not payload:
        return findings
    bit_identical = bool(payload.get("bit_identical_all_changed"))
    findings.append(Finding(family, "bit_identical_all_changed", 1.0, float(bit_identical), not bit_identical))
    one_edit_ratio = float(payload.get("one_edit_sample_ratio", 1.0))
    findings.append(
        Finding(
            family,
            "one_edit sample_ratio",
            ONE_EDIT_SAMPLE_RATIO_CEILING,
            one_edit_ratio,
            one_edit_ratio > ONE_EDIT_SAMPLE_RATIO_CEILING,
        )
    )
    base_rows = {row["edits"]: row for row in baseline.get("incremental", {}).get("edits", [])}
    for row in payload.get("edits", []):
        base_row = base_rows.get(row["edits"])
        if base_row is None:
            continue
        base_reuse = float(base_row["incremental"].get("reuse_fraction", 0.0))
        fresh_reuse = float(row["incremental"].get("reuse_fraction", 0.0))
        floor = base_reuse * (1.0 - REUSE_FRACTION_TOLERANCE)
        findings.append(
            Finding(family, f"edit{row['edits']} reuse_fraction", base_reuse, fresh_reuse, fresh_reuse < floor)
        )
        base_ratio = float(base_row.get("sample_ratio", 0.0))
        fresh_ratio = float(row.get("sample_ratio", 0.0))
        ceiling = base_ratio * (1.0 + SAMPLE_RATIO_TOLERANCE) + SAMPLE_RATIO_SLACK
        findings.append(
            Finding(family, f"edit{row['edits']} sample_ratio", base_ratio, fresh_ratio, fresh_ratio > ceiling)
        )
    return findings


def compare_kernels(family: str, baseline: dict, fresh: dict) -> List[Finding]:
    """Fused-kernel summary: hit bit-identity is hard, speedups are soft.

    ``hits_match`` compares the fresh run against *itself* (every tier/backend
    cell must agree), so it gates unconditionally — a mismatch means the fused
    codegen changed semantics, which no tolerance can excuse.  Speedups are
    compared against the committed baseline with a loose floor because CI
    timing is noisy.
    """
    findings: List[Finding] = []
    fresh_payload = fresh.get("kernels", {})
    base_payload = baseline.get("kernels", {})
    for row in fresh_payload.get("subjects", []):
        findings.append(
            Finding(
                family,
                f"{row['subject']} hits_match",
                1.0,
                float(bool(row.get("hits_match"))),
                not row.get("hits_match"),
            )
        )
    base_rows = {row["subject"]: row for row in base_payload.get("subjects", [])}
    for row in fresh_payload.get("subjects", []):
        base_row = base_rows.get(row["subject"])
        if base_row is None:
            continue
        base_speedup = float(base_row.get("speedups", {}).get("fused_vs_closure_serial", 0.0))
        fresh_speedup = float(row.get("speedups", {}).get("fused_vs_closure_serial", 0.0))
        floor = base_speedup * (1.0 - KERNEL_SPEEDUP_TOLERANCE)
        findings.append(
            Finding(
                family,
                f"{row['subject']} fused_vs_closure_serial",
                base_speedup,
                fresh_speedup,
                fresh_speedup < floor,
            )
        )
    return findings


def compare_observability(family: str, baseline: dict, fresh: dict) -> List[Finding]:
    """Observability summary: bit-identity is hard, overhead gates absolutely.

    ``bit_identical`` compares the fresh run's three modes against each other
    (like the kernel hit check, it needs no baseline and no tolerance).  The
    enabled-mode overhead ratio gates against the fixed
    :data:`OBSERVABILITY_OVERHEAD_CEILING` rather than the committed value:
    the promise is "instrumentation costs at most 5%", not "no slower than
    last time" — the committed baseline documents the trajectory and arms
    this family, it is not the threshold.
    """
    findings: List[Finding] = []
    payload = fresh.get("observability", {})
    if not payload:
        return findings
    bit_identical = bool(payload.get("bit_identical"))
    findings.append(Finding(family, "bit_identical", 1.0, float(bit_identical), not bit_identical))
    ratio = float(payload.get("overhead_ratio", 0.0))
    findings.append(
        Finding(
            family,
            "enabled overhead_ratio",
            OBSERVABILITY_OVERHEAD_CEILING,
            ratio,
            ratio > OBSERVABILITY_OVERHEAD_CEILING,
        )
    )
    return findings


def compare_serve(family: str, baseline: dict, fresh: dict) -> List[Finding]:
    """Serving summary: two hard contracts plus an absolute latency ceiling.

    ``bit_identical`` (served == in-process at the same seed) and
    ``warm_zero_samples`` (a repeated request draws nothing) need no
    baseline and no tolerance.  The warm/cold latency ratio gates against
    the fixed :data:`SERVE_WARM_RATIO_CEILING` — the committed baseline
    documents the trajectory, the ceiling is the promise.  Throughput rows
    are recorded but not gated: shared-runner scheduling noise dominates.
    """
    findings: List[Finding] = []
    payload = fresh.get("serve", {})
    if not payload:
        return findings
    bit_identical = bool(payload.get("bit_identical"))
    findings.append(Finding(family, "bit_identical", 1.0, float(bit_identical), not bit_identical))
    warm_zero = bool(payload.get("warm_zero_samples"))
    findings.append(Finding(family, "warm_zero_samples", 1.0, float(warm_zero), not warm_zero))
    ratio = float(payload.get("warm_over_cold_ratio", 0.0))
    findings.append(
        Finding(family, "warm_over_cold_ratio", SERVE_WARM_RATIO_CEILING, ratio, ratio > SERVE_WARM_RATIO_CEILING)
    )
    return findings


#: Benchmark families and the comparator handling each.
FAMILIES = (
    ("BENCH_adaptive.json", lambda b, f: compare_sigma_ratios("adaptive", b, f, "adaptive_allocation")),
    ("BENCH_importance.json", lambda b, f: compare_sigma_ratios("importance", b, f, "importance")),
    ("BENCH_store.json", lambda b, f: compare_reuse_fractions("store", b, f)),
    ("BENCH_incremental.json", lambda b, f: compare_incremental("incremental", b, f)),
    ("BENCH_kernels.json", lambda b, f: compare_kernels("kernels", b, f)),
    ("BENCH_observability.json", lambda b, f: compare_observability("observability", b, f)),
    ("BENCH_serve.json", lambda b, f: compare_serve("serve", b, f)),
)


def main() -> int:
    findings: List[Finding] = []
    for name, comparator in FAMILIES:
        fresh = load_fresh(name)
        if fresh is None:
            print(f"[   skipped] {name}: not produced by this run")
            continue
        baseline = load_baseline(name)
        if baseline is None:
            print(f"[   skipped] {name}: no committed baseline at HEAD (new family)")
            continue
        findings.extend(comparator(baseline, fresh))

    for finding in findings:
        print(finding.render())

    regressions = [finding for finding in findings if finding.regressed]
    if not regressions:
        print(f"\nbenchmark regression gate: {len(findings)} metrics ok")
        return 0
    if os.environ.get(OVERRIDE_ENV, "") not in ("", "0", "false", "False"):
        print(
            f"\nbenchmark regression gate: {len(regressions)} regression(s) WAIVED "
            f"({OVERRIDE_ENV} is set — re-record the baselines in this change)"
        )
        return 0
    print(
        f"\nbenchmark regression gate: {len(regressions)} regression(s); "
        f"set {OVERRIDE_ENV}=1 to waive while re-recording baselines"
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
