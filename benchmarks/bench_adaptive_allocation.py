"""Adaptive (Neyman) vs fixed (even) budget allocation at equal sample counts.

The paper splits every stratified budget evenly across strata; the adaptive
engine spends a pilot fraction, then routes the remaining budget to the
strata and factors with the largest weighted variance (Neyman allocation,
``n_i ∝ w_i σ_i``).  This benchmark runs both policies on Table-2
microbenchmarks with the *same seed and the same total sample count* and
reports the ratio of the combined standard deviations — the budget-vs-
precision tradeoff of Section 3.3, Equation (3).

Expected outcome: identical sample counts, statistically identical means, and
a σ ratio strictly below 1 for every subject whose paving leaves boundary
boxes of unequal weight.

Also exercised: the ``target_std`` convergence knob, which must terminate the
loop early (spending less than the full budget) when the requested precision
is reached.
"""

from __future__ import annotations

import statistics

import pytest

try:
    from benchmarks.conftest import FULL_SCALE, record_bench, repetitions, write_bench_summary
except ImportError:  # executed directly: benchmarks/ is sys.path[0]
    from conftest import FULL_SCALE, record_bench, repetitions, write_bench_summary
from repro.analysis.results import Table
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig
from repro.subjects.solids import solid_by_name

#: Table-2 subjects with sampled (boundary) strata, so allocation matters.
SUBJECTS = ("Sphere", "Torus", "Tetrahedron", "Icosahedron")

#: Per-factor budget of the comparison (paper scale when QCORAL_BENCH_FULL=1).
BUDGET = 100_000 if FULL_SCALE else 10_000


def run_pair(name: str, samples: int, seed: int) -> dict:
    """One seed-matched fixed-vs-adaptive comparison on one solid."""
    solid = solid_by_name(name)
    fixed_config = QCoralConfig.strat_partcache(samples, seed=seed)
    adaptive_config = QCoralConfig.adaptive(samples, seed=seed)

    fixed = QCoralAnalyzer(solid.profile(), fixed_config).analyze(solid.constraint_set())
    adaptive = QCoralAnalyzer(solid.profile(), adaptive_config).analyze(solid.constraint_set())

    return {
        "subject": name,
        "seed": seed,
        "samples_fixed": fixed.total_samples,
        "samples_adaptive": adaptive.total_samples,
        "mean_fixed": fixed.mean,
        "mean_adaptive": adaptive.mean,
        "sigma_fixed": fixed.std,
        "sigma_adaptive": adaptive.std,
        "sigma_ratio": adaptive.std / fixed.std if fixed.std > 0 else 1.0,
        "rounds_adaptive": adaptive.rounds,
    }


def collect_results(samples: int = BUDGET, runs: int | None = None, base_seed: int = 200) -> list:
    """Seed-matched comparisons for every subject, registered for the JSON dump."""
    trials = runs if runs is not None else repetitions()
    rows = []
    for name in SUBJECTS:
        pairs = [run_pair(name, samples, base_seed + index) for index in range(trials)]
        rows.append(
            {
                "subject": name,
                "samples": samples,
                "runs": trials,
                "sigma_fixed": statistics.fmean(pair["sigma_fixed"] for pair in pairs),
                "sigma_adaptive": statistics.fmean(pair["sigma_adaptive"] for pair in pairs),
                "sigma_ratio": statistics.fmean(pair["sigma_ratio"] for pair in pairs),
                "mean_gap": statistics.fmean(
                    abs(pair["mean_adaptive"] - pair["mean_fixed"]) for pair in pairs
                ),
                "pairs": pairs,
            }
        )
    record_bench(
        "adaptive_allocation",
        {
            "budget": samples,
            "subjects": [
                {key: value for key, value in row.items() if key != "pairs"} for row in rows
            ],
        },
    )
    return rows


def generate_table() -> Table:
    table = Table(
        f"Adaptive vs even allocation at {BUDGET} samples (seed-matched)",
        ("σ even", "σ adaptive", "σ ratio", "mean gap"),
    )
    for row in collect_results():
        table.add_row(
            row["subject"],
            row["sigma_fixed"],
            row["sigma_adaptive"],
            row["sigma_ratio"],
            row["mean_gap"],
        )
    return table


class TestAdaptiveAllocation:
    @pytest.mark.parametrize("name", ["Sphere", "Torus"])
    def test_adaptive_beats_even_at_equal_budget(self, name):
        """Same seed, same sample count, strictly lower combined σ."""
        pair = run_pair(name, 10_000, seed=7)
        assert pair["samples_adaptive"] == pair["samples_fixed"]
        assert pair["sigma_adaptive"] < pair["sigma_fixed"]
        assert pair["mean_adaptive"] == pytest.approx(pair["mean_fixed"], abs=0.02)

    def test_target_std_terminates_early(self):
        """A reachable precision target stops the loop before the budget."""
        solid = solid_by_name("Sphere")
        config = QCoralConfig.adaptive(100_000, target_std=5e-3, seed=7)
        result = QCoralAnalyzer(solid.profile(), config).analyze(solid.constraint_set())
        assert result.met_target
        assert result.total_samples < 100_000
        assert result.rounds < config.max_rounds

    def test_summary_registered(self):
        rows = collect_results(samples=5_000, runs=2)
        assert len(rows) == len(SUBJECTS)
        assert all(row["sigma_ratio"] < 1.0 for row in rows)


if __name__ == "__main__":
    print(generate_table().render())
    print(f"\nsummary written to {write_bench_summary()}")
    if not FULL_SCALE:
        print("(reduced mode: set QCORAL_BENCH_FULL=1 for the paper-scale sweep)")
