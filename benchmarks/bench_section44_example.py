"""Section 4.4 worked example: the autopilot safety monitor.

The paper reports P(callSupervisor) = 0.738089 with variance 1.64e-6 against
the exact value 0.737848.  This benchmark runs the full pipeline (symbolic
execution + compositional quantification) and checks the estimate lands on the
paper's value; it also times the two pipeline stages separately.
"""

from __future__ import annotations

import pytest

from repro.analysis.pipeline import ProbabilisticAnalysisPipeline
from repro.analysis.results import Table
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig
from repro.subjects import programs
from repro.symexec import execute_program, parse_program

EXACT = programs.SAFETY_MONITOR_EXACT


def run_pipeline(samples: int = 30_000, seed: int = 0):
    pipeline = ProbabilisticAnalysisPipeline(
        programs.SAFETY_MONITOR,
        config=QCoralConfig.strat_partcache(samples, seed=seed),
    )
    return pipeline.analyze(programs.SAFETY_MONITOR_EVENT)


def generate_table() -> Table:
    table = Table(
        "Section 4.4 — safety monitor (exact probability 0.737848)",
        ("estimate", "std", "abs error"),
    )
    for samples in (1_000, 10_000, 30_000):
        result = run_pipeline(samples=samples, seed=11)
        table.add_row(
            f"qCORAL{{STRAT,PARTCACHE}} @ {samples} samples",
            result.mean,
            result.std,
            abs(result.mean - EXACT),
        )
    return table


class TestSection44Benchmarks:
    def test_symbolic_execution_stage(self, benchmark):
        program = parse_program(programs.SAFETY_MONITOR)
        result = benchmark(lambda: execute_program(program))
        assert result.path_count == 3

    def test_probabilistic_analysis_stage(self, benchmark):
        program = parse_program(programs.SAFETY_MONITOR)
        target = execute_program(program).constraint_set_for(programs.SAFETY_MONITOR_EVENT)
        from repro.core.profiles import UsageProfile

        profile = UsageProfile.uniform(program.input_bounds())

        def run():
            analyzer = QCoralAnalyzer(profile, QCoralConfig.strat_partcache(10_000, seed=5))
            return analyzer.analyze(target)

        result = benchmark(run)
        assert result.mean == pytest.approx(EXACT, abs=0.02)

    def test_estimate_matches_paper(self):
        result = run_pipeline(samples=30_000, seed=13)
        assert result.mean == pytest.approx(EXACT, abs=0.01)
        assert result.std < 0.01


if __name__ == "__main__":
    print(generate_table().render())
